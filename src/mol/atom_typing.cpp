#include "mol/atom_typing.hpp"

#include <array>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

// Rii/epsii/vol/solpar follow AD4.1_bound.dat; Hg is deliberately marked
// unsupported (the real file has no Hg entry, which is what made the
// paper's Hg-containing receptors hang activity 3).
constexpr std::array<AdTypeParams, kAdTypeCount> kParams{{
    {AdType::H, "H", 2.00, 0.020, 0.0000, 0.00051, false, false, false, true},
    {AdType::HD, "HD", 2.00, 0.020, 0.0000, 0.00051, true, false, false, true},
    {AdType::C, "C", 4.00, 0.150, 33.5103, -0.00143, false, false, true, true},
    {AdType::A, "A", 4.00, 0.150, 33.5103, -0.00052, false, false, true, true},
    {AdType::N, "N", 3.50, 0.160, 22.4493, -0.00162, false, false, false, true},
    {AdType::NA, "NA", 3.50, 0.160, 22.4493, -0.00162, false, true, false, true},
    {AdType::OA, "OA", 3.20, 0.200, 17.1573, -0.00251, false, true, false, true},
    {AdType::F, "F", 3.09, 0.080, 15.4480, -0.00110, false, false, true, true},
    {AdType::Mg, "Mg", 1.30, 0.875, 1.5600, -0.00110, false, false, false, true},
    {AdType::P, "P", 4.20, 0.200, 38.7924, -0.00110, false, false, false, true},
    {AdType::SA, "SA", 4.00, 0.200, 33.5103, -0.00214, false, true, false, true},
    {AdType::S, "S", 4.00, 0.200, 33.5103, -0.00214, false, false, false, true},
    {AdType::Cl, "Cl", 4.09, 0.276, 35.8235, -0.00110, false, false, true, true},
    {AdType::Ca, "Ca", 1.98, 0.550, 2.7700, -0.00110, false, false, false, true},
    {AdType::Mn, "Mn", 1.30, 0.875, 2.1400, -0.00110, false, false, false, true},
    {AdType::Fe, "Fe", 1.30, 0.010, 1.8400, -0.00110, false, false, false, true},
    {AdType::Zn, "Zn", 1.48, 0.550, 1.7000, -0.00110, false, false, false, true},
    {AdType::Br, "Br", 4.33, 0.389, 42.5661, -0.00110, false, false, true, true},
    {AdType::I, "I", 4.72, 0.550, 55.0585, -0.00110, false, false, true, true},
    {AdType::Hg, "Hg", 3.10, 0.550, 17.0000, -0.00110, false, false, false, false},
}};

}  // namespace

const AdTypeParams& ad_type_params(AdType t) {
  const auto idx = static_cast<std::size_t>(t);
  SCIDOCK_ASSERT(idx < kParams.size());
  return kParams[idx];
}

std::optional<AdType> ad_type_from_name(std::string_view name) {
  const std::string_view s = trim(name);
  for (const AdTypeParams& p : kParams) {
    if (p.name == s) return p.type;
  }
  return std::nullopt;
}

std::string_view ad_type_name(AdType t) { return ad_type_params(t).name; }

AdType assign_ad_type(const AtomContext& ctx) {
  switch (ctx.element) {
    case Element::H:
      return ctx.bonded_to_hetero ? AdType::HD : AdType::H;
    case Element::C:
      return ctx.aromatic ? AdType::A : AdType::C;
    case Element::N:
      // AD4 convention: nitrogens with a free lone pair (no bonded H and
      // not fully substituted) accept hydrogen bonds.
      return (!ctx.has_hydrogen && ctx.heavy_degree <= 2) ? AdType::NA
                                                          : AdType::N;
    case Element::O:
      return AdType::OA;
    case Element::F:
      return AdType::F;
    case Element::Mg:
      return AdType::Mg;
    case Element::P:
      return AdType::P;
    case Element::S:
      // Thioether / thiol sulphurs are weak acceptors (SA); oxidised or
      // fully substituted sulphur is plain S.
      return ctx.heavy_degree <= 2 ? AdType::SA : AdType::S;
    case Element::Cl:
      return AdType::Cl;
    case Element::Ca:
      return AdType::Ca;
    case Element::Mn:
      return AdType::Mn;
    case Element::Fe:
      return AdType::Fe;
    case Element::Zn:
      return AdType::Zn;
    case Element::Br:
      return AdType::Br;
    case Element::I:
      return AdType::I;
    case Element::Hg:
      return AdType::Hg;
    case Element::Na:
    case Element::K:
      // Alkali ions are not in the AD4 subset we model; treat as Mg-like.
      return AdType::Mg;
    case Element::Unknown:
      return AdType::C;
  }
  return AdType::C;
}

VinaKind vina_kind(AdType t) {
  const AdTypeParams& p = ad_type_params(t);
  VinaKind k;
  k.skip = (t == AdType::H || t == AdType::HD);
  k.radius = p.rii / 2.0;  // xs radius approximated from the LJ optimum
  k.hydrophobic = p.hydrophobic;
  k.donor = p.hbond_donor;
  k.acceptor = p.hbond_acceptor;
  return k;
}

}  // namespace scidock::mol
