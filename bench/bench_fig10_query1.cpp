// Figure 10 / Query 1: per-activity min/max/sum/avg durations, obtained
// by running the paper's SQL verbatim against the provenance repository
// after a 1,000-pair execution.

#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/analysis.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: Query 1 — per-activity statistics",
                      "Figure 10 (Query 1)");

  const int pairs = bench::env_int("SCIDOCK_Q1_PAIRS", 1000);
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::Adaptive;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), options);
  prov::ProvenanceStore store;
  const wf::SimReport report = core::run_simulated(exp, 16, &store);
  std::printf("executed %d pairs (%lld activations) with provenance capture\n\n",
              pairs, report.activations_finished);

  const std::string query = core::query1(1);
  std::printf("SQL> %s\n\n", query.c_str());
  std::printf("%s\n", store.query(query).to_text().c_str());

  std::printf("shape check (Figure 10): babel has the smallest average;\n"
              "the docking activities have the largest max and sum; every\n"
              "row satisfies min <= avg <= max.\n");
  return 0;
}
