#include "dock/conformation.hpp"

#include <numbers>

#include "util/error.hpp"

namespace scidock::dock {

DockPose DockPose::random(const GridBox& box, const mol::Vec3& reference_center,
                          int torsion_count, Rng& rng) {
  DockPose pose;
  const mol::Aabb bounds = box.bounds();
  const mol::Vec3 target{rng.uniform(bounds.lo.x, bounds.hi.x),
                         rng.uniform(bounds.lo.y, bounds.hi.y),
                         rng.uniform(bounds.lo.z, bounds.hi.z)};
  pose.rigid.translation = target - reference_center;
  pose.rigid.rotation =
      mol::Quaternion::random_uniform(rng.uniform(), rng.uniform(), rng.uniform());
  pose.torsions.resize(static_cast<std::size_t>(torsion_count));
  for (double& t : pose.torsions) {
    t = rng.uniform(-std::numbers::pi, std::numbers::pi);
  }
  return pose;
}

void DockPose::mutate(double translate_sigma, double rotate_sigma,
                      double torsion_sigma, Rng& rng) {
  rigid.translation.x += rng.normal(0.0, translate_sigma);
  rigid.translation.y += rng.normal(0.0, translate_sigma);
  rigid.translation.z += rng.normal(0.0, translate_sigma);
  const mol::Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
  rigid.rotation = (mol::Quaternion::from_axis_angle(
                        axis, rng.normal(0.0, rotate_sigma)) *
                    rigid.rotation)
                       .normalized();
  for (double& t : torsions) t += rng.normal(0.0, torsion_sigma);
}

void DockPose::mutate_one(double translate_sigma, double rotate_sigma,
                          double torsion_sigma, Rng& rng) {
  const std::uint64_t choices = 2 + torsions.size();
  const std::uint64_t pick = rng.below(choices);
  if (pick == 0) {
    rigid.translation.x += rng.normal(0.0, translate_sigma);
    rigid.translation.y += rng.normal(0.0, translate_sigma);
    rigid.translation.z += rng.normal(0.0, translate_sigma);
  } else if (pick == 1) {
    const mol::Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
    rigid.rotation = (mol::Quaternion::from_axis_angle(
                          axis, rng.normal(0.0, rotate_sigma)) *
                      rigid.rotation)
                         .normalized();
  } else {
    torsions[static_cast<std::size_t>(pick - 2)] += rng.normal(0.0, torsion_sigma);
  }
}

DockPose DockPose::crossover(const DockPose& other, Rng& rng) const {
  SCIDOCK_ASSERT(torsions.size() == other.torsions.size());
  DockPose child = *this;
  if (rng.chance(0.5)) child.rigid.translation.x = other.rigid.translation.x;
  if (rng.chance(0.5)) child.rigid.translation.y = other.rigid.translation.y;
  if (rng.chance(0.5)) child.rigid.translation.z = other.rigid.translation.z;
  if (rng.chance(0.5)) child.rigid.rotation = other.rigid.rotation;
  for (std::size_t i = 0; i < torsions.size(); ++i) {
    if (rng.chance(0.5)) child.torsions[i] = other.torsions[i];
  }
  return child;
}

}  // namespace scidock::dock
