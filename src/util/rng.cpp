#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace scidock {

std::uint64_t Rng::below(std::uint64_t n) {
  SCIDOCK_ASSERT(n > 0);
  // Lemire-style rejection keeps the draw unbiased for any n.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box–Muller; u1 is kept away from zero so log(u1) is finite.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  SCIDOCK_ASSERT(rate > 0.0);
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

}  // namespace scidock
