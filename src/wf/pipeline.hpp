#pragma once

/// \file pipeline.hpp
/// Runtime binding of a workflow: each activity tag gets a C++
/// implementation (the "activation" the paper's templates launch) and an
/// optional router that picks the next stage per tuple — SciDock's
/// docking filter routes small receptors to AD4 and large ones to Vina.

#include <functional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "prov/prov.hpp"
#include "util/rng.hpp"
#include "vfs/vfs.hpp"
#include "wf/relation.hpp"
#include "wf/workflow.hpp"

namespace scidock::wf {

/// Everything an activation sees at run time.
struct ActivationContext {
  vfs::SharedFileSystem* fs = nullptr;
  prov::ProvenanceStore* prov = nullptr;
  long long wkfid = 0;
  long long actid = 0;
  long long taskid = 0;
  std::string expdir;     ///< experiment root directory on the shared FS
  double now = 0.0;       ///< current time (wall or simulation seconds)
  Rng rng;                ///< per-activation deterministic stream
  /// Executor's observability context (null members = no instrumentation),
  /// so stage impls can emit domain metrics/spans (grid-map cache hits,
  /// AutoGrid slab timings) into the same registry/trace as the executor.
  obs::Observability obs{};

  /// Convenience: write an output file and record it in provenance.
  void emit_file(const std::string& path, std::string content) const;
  /// Convenience: record an extracted domain value (FEB, RMSD, ...).
  void emit_value(std::string_view key, double num,
                  std::string_view text = "") const;
};

/// An activity implementation: consumes one tuple, produces zero or more
/// output tuples (Map: exactly one; Filter: zero or one; SplitMap: many).
/// Throws ActivityError to signal a failed activation (the engine's
/// re-execution machinery catches it).
using ActivityFn =
    std::function<std::vector<Tuple>(const Tuple&, ActivationContext&)>;

/// Per-tuple routing: returns the tag of the next stage given this
/// stage's output tuple, or "" to fall through to the next stage in
/// order, or kEndOfPipeline to finish the tuple's chain.
using RouteFn = std::function<std::string(const Tuple&)>;

inline constexpr const char* kEndOfPipeline = "<end>";

struct Stage {
  std::string tag;
  AlgebraicOp op = AlgebraicOp::Map;
  ActivityFn impl;        ///< may be empty for simulation-only pipelines
  RouteFn route;          ///< empty = next stage in declaration order
  /// Multiplier on the cost model's service time as a function of the
  /// tuple (e.g. receptor size); empty = 1.0.
  std::function<double(const Tuple&)> workload_scale;
  /// Deterministic-hang predicate (the Hg-receptor case); empty = never.
  std::function<bool(const Tuple&)> hazard;
};

class Pipeline {
 public:
  void add_stage(Stage stage);
  const std::vector<Stage>& stages() const { return stages_; }
  const Stage& stage(std::string_view tag) const;   ///< throws NotFoundError
  int stage_index(std::string_view tag) const;      ///< -1 if absent

  /// Tag of the stage following `tag` for this tuple (after routing), or
  /// kEndOfPipeline.
  std::string next_stage(std::string_view tag, const Tuple& tuple) const;

  /// The full ordered chain a tuple would traverse, starting at the first
  /// stage, assuming its routing fields are already present (used by the
  /// simulated executor, which never runs impls).
  std::vector<std::string> chain_for(const Tuple& tuple) const;

 private:
  std::vector<Stage> stages_;
};

}  // namespace scidock::wf
