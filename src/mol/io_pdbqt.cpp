#include "mol/io_pdbqt.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

std::string atom_line(const Atom& a, int serial) {
  return strformat(
      "%-6s%5d %-4s %-3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f    %6.3f %-2s\n",
      a.hetero ? "HETATM" : "ATOM", serial, a.name.substr(0, 4).c_str(),
      a.residue_name.empty() ? "LIG" : a.residue_name.substr(0, 3).c_str(),
      a.chain_id, a.residue_seq, a.pos.x, a.pos.y, a.pos.z, 1.0, 0.0,
      a.partial_charge, std::string(ad_type_name(a.ad_type)).c_str());
}

}  // namespace

PdbqtModel read_pdbqt(std::string_view text, std::string_view name) {
  PdbqtModel model;
  model.molecule.set_name(std::string(name));

  std::istringstream in{std::string(text)};
  std::string line;

  struct PendingBranch {
    int serial_from = 0;
    int serial_to = 0;
    int parent = -1;
    std::vector<int> scope_atoms;  ///< atom indices read inside this scope
  };
  std::vector<PendingBranch> branches;
  std::vector<int> open_stack;       ///< indices into `branches`
  std::vector<int> root_atoms;
  std::map<int, int> serial_to_index;
  bool saw_root_marker = false;

  while (std::getline(in, line)) {
    const std::string_view lv = line;
    const std::string_view record = fixed_columns(lv, 0, 6);
    if (record == "ATOM" || record == "HETATM") {
      if (lv.size() < 54) throw ParseError("PDBQT", "truncated atom record: " + line);
      Atom atom;
      atom.serial = static_cast<int>(parse_int(fixed_columns(lv, 6, 5), "PDBQT serial"));
      atom.name = std::string(fixed_columns(lv, 12, 4));
      atom.residue_name = std::string(fixed_columns(lv, 17, 3));
      const std::string_view chain = fixed_columns(lv, 21, 1);
      atom.chain_id = chain.empty() ? 'A' : chain[0];
      const std::string_view seq = fixed_columns(lv, 22, 4);
      atom.residue_seq = seq.empty() ? 0 : static_cast<int>(parse_int(seq, "PDBQT resSeq"));
      atom.pos.x = parse_double(fixed_columns(lv, 30, 8), "PDBQT x");
      atom.pos.y = parse_double(fixed_columns(lv, 38, 8), "PDBQT y");
      atom.pos.z = parse_double(fixed_columns(lv, 46, 8), "PDBQT z");
      atom.hetero = (record == "HETATM");
      // Tail after the z column: occupancy, temp factor, charge, AD type.
      const auto tail = split_ws(lv.substr(54));
      if (tail.size() < 2) throw ParseError("PDBQT", "missing charge/type: " + line);
      atom.partial_charge = parse_double(tail[tail.size() - 2], "PDBQT charge");
      const auto t = ad_type_from_name(tail.back());
      if (!t) throw ParseError("PDBQT", "unknown AutoDock type '" + tail.back() + "'");
      atom.ad_type = *t;
      // Element follows from the AutoDock type token.
      switch (*t) {
        case AdType::H: case AdType::HD: atom.element = Element::H; break;
        case AdType::C: case AdType::A: atom.element = Element::C; break;
        case AdType::N: case AdType::NA: atom.element = Element::N; break;
        case AdType::OA: atom.element = Element::O; break;
        case AdType::F: atom.element = Element::F; break;
        case AdType::Mg: atom.element = Element::Mg; break;
        case AdType::P: atom.element = Element::P; break;
        case AdType::S: case AdType::SA: atom.element = Element::S; break;
        case AdType::Cl: atom.element = Element::Cl; break;
        case AdType::Ca: atom.element = Element::Ca; break;
        case AdType::Mn: atom.element = Element::Mn; break;
        case AdType::Fe: atom.element = Element::Fe; break;
        case AdType::Zn: atom.element = Element::Zn; break;
        case AdType::Br: atom.element = Element::Br; break;
        case AdType::I: atom.element = Element::I; break;
        case AdType::Hg: atom.element = Element::Hg; break;
        default: atom.element = Element::Unknown; break;
      }
      const int serial = atom.serial;
      const int index = model.molecule.add_atom(std::move(atom));
      serial_to_index[serial] = index;
      if (open_stack.empty()) {
        root_atoms.push_back(index);
      } else {
        for (int bi : open_stack) {
          branches[static_cast<std::size_t>(bi)].scope_atoms.push_back(index);
        }
      }
      continue;
    }
    const auto fields = split_ws(lv);
    if (fields.empty()) continue;
    if (fields[0] == "ROOT") {
      saw_root_marker = true;
    } else if (fields[0] == "ENDROOT") {
      // nothing to do: root scope is "no open branches"
    } else if (fields[0] == "BRANCH") {
      if (fields.size() < 3) throw ParseError("PDBQT", "bad BRANCH record: " + line);
      PendingBranch pb;
      pb.serial_from = static_cast<int>(parse_int(fields[1], "BRANCH from"));
      pb.serial_to = static_cast<int>(parse_int(fields[2], "BRANCH to"));
      pb.parent = open_stack.empty() ? -1 : open_stack.back();
      branches.push_back(std::move(pb));
      open_stack.push_back(static_cast<int>(branches.size()) - 1);
    } else if (fields[0] == "ENDBRANCH") {
      if (open_stack.empty()) throw ParseError("PDBQT", "unbalanced ENDBRANCH");
      open_stack.pop_back();
    } else if (fields[0] == "TORSDOF") {
      if (fields.size() >= 2) {
        model.torsdof = static_cast<int>(parse_int(fields[1], "TORSDOF"));
      }
    }
    // REMARK and other records are ignored.
  }
  if (!open_stack.empty()) throw ParseError("PDBQT", "unbalanced BRANCH");
  if (model.molecule.atom_count() == 0) throw ParseError("PDBQT", "no atoms");

  model.is_ligand = saw_root_marker || !branches.empty();
  std::vector<TorsionBranch> resolved;
  resolved.reserve(branches.size());
  for (const PendingBranch& pb : branches) {
    const auto fit = serial_to_index.find(pb.serial_from);
    const auto tit = serial_to_index.find(pb.serial_to);
    if (fit == serial_to_index.end() || tit == serial_to_index.end()) {
      throw ParseError("PDBQT", "BRANCH references unknown atom serial");
    }
    TorsionBranch br;
    br.atom_from = fit->second;
    br.atom_to = tit->second;
    br.parent = pb.parent;
    br.moving_atoms = pb.scope_atoms;
    std::erase(br.moving_atoms, br.atom_to);
    resolved.push_back(std::move(br));
  }
  model.torsions = TorsionTree::from_branches(std::move(resolved), root_atoms);
  if (model.is_ligand && model.torsdof == 0) {
    model.torsdof = model.torsions.torsion_count();
  }
  return model;
}

std::vector<PdbqtModel> read_pdbqt_models(std::string_view text,
                                          std::string_view name) {
  std::vector<PdbqtModel> models;
  std::istringstream in{std::string(text)};
  std::string line;
  std::string block;
  bool in_model = false;
  bool saw_model_record = false;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    if (!fields.empty() && fields[0] == "MODEL") {
      saw_model_record = true;
      in_model = true;
      block.clear();
      continue;
    }
    if (!fields.empty() && fields[0] == "ENDMDL") {
      SCIDOCK_REQUIRE(in_model, "ENDMDL without MODEL");
      models.push_back(read_pdbqt(block, name));
      in_model = false;
      continue;
    }
    block += line;
    block += '\n';
  }
  SCIDOCK_REQUIRE(!in_model, "unterminated MODEL block");
  if (!saw_model_record) models.push_back(read_pdbqt(text, name));
  return models;
}

std::string write_pdbqt_rigid(const Molecule& m) {
  std::string out = "REMARK  scidock rigid receptor " + m.name() + "\n";
  for (int i = 0; i < m.atom_count(); ++i) {
    out += atom_line(m.atom(i), i + 1);
  }
  out += "TER\n";
  return out;
}

std::string write_pdbqt_ligand(const Molecule& m, const TorsionTree& tree) {
  std::string out = "REMARK  scidock ligand " + m.name() + "\n";
  out += strformat("REMARK  %d active torsions\n", tree.torsion_count());

  // Branch ownership: each branch's own fragment is {atom_to} plus its
  // moving atoms minus everything owned by child branches.
  const auto& branches = tree.branches();
  std::vector<std::vector<int>> children(branches.size());
  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    if (branches[bi].parent >= 0) {
      children[static_cast<std::size_t>(branches[bi].parent)].push_back(static_cast<int>(bi));
    }
  }
  std::vector<std::vector<int>> own(branches.size());
  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    std::vector<bool> excluded(static_cast<std::size_t>(m.atom_count()), false);
    for (int ci : children[bi]) {
      const TorsionBranch& cb = branches[static_cast<std::size_t>(ci)];
      excluded[static_cast<std::size_t>(cb.atom_to)] = true;
      for (int a : cb.moving_atoms) excluded[static_cast<std::size_t>(a)] = true;
    }
    own[bi].push_back(branches[bi].atom_to);
    for (int a : branches[bi].moving_atoms) {
      if (!excluded[static_cast<std::size_t>(a)]) own[bi].push_back(a);
    }
    std::sort(own[bi].begin(), own[bi].end());
    own[bi].erase(std::unique(own[bi].begin(), own[bi].end()), own[bi].end());
  }

  out += "ROOT\n";
  for (int i : tree.root_atoms()) out += atom_line(m.atom(i), i + 1);
  out += "ENDROOT\n";

  // Emit the branch forest depth-first so BRANCH records nest correctly.
  std::function<void(int)> emit = [&](int bi) {
    const TorsionBranch& br = branches[static_cast<std::size_t>(bi)];
    out += strformat("BRANCH %3d %3d\n", br.atom_from + 1, br.atom_to + 1);
    for (int a : own[static_cast<std::size_t>(bi)]) out += atom_line(m.atom(a), a + 1);
    for (int ci : children[static_cast<std::size_t>(bi)]) emit(ci);
    out += strformat("ENDBRANCH %3d %3d\n", br.atom_from + 1, br.atom_to + 1);
  };
  for (std::size_t bi = 0; bi < branches.size(); ++bi) {
    if (branches[bi].parent == -1) emit(static_cast<int>(bi));
  }
  out += strformat("TORSDOF %d\n", tree.torsion_count());
  return out;
}

}  // namespace scidock::mol
