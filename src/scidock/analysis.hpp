#pragma once

/// \file analysis.hpp
/// Result analysis: the Table 3 statistics (favourable interactions,
/// average FEB, average RMSD per ligand) computed from workflow outputs,
/// and the paper's provenance queries (Query 1, Query 2, the Figure 5
/// histogram query) as ready-to-run SQL.

#include <string>
#include <vector>

#include "prov/prov.hpp"
#include "wf/relation.hpp"

namespace scidock::core {

/// One Table 3 row for one engine.
struct Table3Row {
  std::string ligand;
  int total_pairs = 0;
  int favorable = 0;      ///< count of FEB < 0 ("Total Number of FEB (-)")
  double avg_feb_neg = 0.0;  ///< mean FEB over the favourable subset
  double avg_rmsd = 0.0;     ///< mean RMSD over all docked pairs
};

/// Aggregate an output relation (fields: ligand, feb, rmsd) per ligand.
std::vector<Table3Row> table3_from_relation(const wf::Relation& output);

/// Render rows as an aligned text table (the bench output format).
std::string render_table3(const std::vector<Table3Row>& ad4,
                          const std::vector<Table3Row>& vina);

// ---------------------------------------------------------------------
// The paper's queries, verbatim modulo schema-documented column names.
// ---------------------------------------------------------------------

/// §V.C histogram query: activation durations of one workflow, in end
/// order (drives Figure 5).
std::string figure5_query(long long wkfid);

/// Query 1 (Figure 10): per-activity min/max/sum/avg durations.
std::string query1(long long wkfid);

/// Query 2 (Figure 11): names, sizes and locations of the '.dlg' files
/// with their producing workflow and activity.
std::string query2();

}  // namespace scidock::core
