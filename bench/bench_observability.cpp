// Observability overhead + perf trajectory: the sim-executor scaling
// sweep at 2/4/8 workers with full tracing+metrics recording on vs off.
//
// TET is simulated time and must be byte-identical in both modes (the
// recorder never perturbs the discrete-event schedule — asserted here);
// the cost of observability is the extra *wall-clock* time the simulator
// spends appending events and bumping counters. The gate is overhead
// < SCIDOCK_OBS_MAX_OVERHEAD_PCT (default 5%), per the design goal that
// instrumentation is cheap enough to leave on.
//
// Knobs: SCIDOCK_OBS_PAIRS (workload size), SCIDOCK_OBS_REPS (timing
// repetitions; the minimum over reps is used, which cancels scheduler
// noise better than the mean on shared CI machines).
//
// Writes BENCH_observability.json — the first record of the perf
// trajectory every future perf PR appends to.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace {

using namespace scidock;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::print_header("SciDock bench: observability overhead",
                      "design goal: tracing cheap enough to leave on");

  const int pairs = bench::env_int("SCIDOCK_OBS_PAIRS", 1500);
  const int reps = bench::env_int("SCIDOCK_OBS_REPS", 3);
  const int max_overhead_pct = bench::env_int("SCIDOCK_OBS_MAX_OVERHEAD_PCT", 5);
  const std::vector<int> worker_counts{2, 4, 8};
  std::printf("workload: %d pairs, %d reps, workers 2/4/8, gate < %d%%\n\n",
              pairs, reps, max_overhead_pct);

  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::ForceAd4;
  const core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), options);

  std::vector<double> tets;
  std::size_t trace_events = 0;
  std::size_t metric_series = 0;
  double wall_off_total = 0.0;
  double wall_on_total = 0.0;

  std::printf("%8s | %12s | %12s | %12s\n", "workers", "TET (sim)",
              "wall off", "wall on");
  std::printf("---------+--------------+--------------+-------------\n");
  for (const int workers : worker_counts) {
    double tet_off = 0.0;
    double tet_on = 0.0;
    double wall_off = 0.0;
    double wall_on = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      {
        const auto t0 = std::chrono::steady_clock::now();
        const wf::SimReport r = core::run_simulated(exp, workers);
        const double wall = wall_seconds_since(t0);
        tet_off = r.total_execution_time_s;
        wall_off = rep == 0 ? wall : std::min(wall_off, wall);
      }
      {
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
        wf::SimExecutorOptions sim_options;
        sim_options.obs = {&trace, &metrics};
        const auto t0 = std::chrono::steady_clock::now();
        const wf::SimReport r =
            core::run_simulated(exp, workers, nullptr, std::move(sim_options));
        const double wall = wall_seconds_since(t0);
        tet_on = r.total_execution_time_s;
        wall_on = rep == 0 ? wall : std::min(wall_on, wall);
        trace_events = trace.event_count();
        metric_series = metrics.series_count();
      }
    }
    if (tet_on != tet_off) {
      std::fprintf(stderr,
                   "FAIL: recording changed the simulation (TET %.6f vs "
                   "%.6f at %d workers)\n",
                   tet_on, tet_off, workers);
      return 1;
    }
    tets.push_back(tet_off);
    wall_off_total += wall_off;
    wall_on_total += wall_on;
    std::printf("%8d | %11.0fs | %11.3fs | %11.3fs\n", workers, tet_off,
                wall_off, wall_on);
  }

  // Speedups vs the 1-core-equivalent baseline (2 x TET at 2 workers,
  // bench_common's normalisation); median TET across the sweep points.
  const double serial = 2.0 * tets[0];
  std::vector<double> sorted_tets = tets;
  std::sort(sorted_tets.begin(), sorted_tets.end());
  const double median_tet = sorted_tets[sorted_tets.size() / 2];
  const double overhead_pct =
      wall_off_total > 0.0
          ? 100.0 * (wall_on_total - wall_off_total) / wall_off_total
          : 0.0;

  std::printf("\nspeedup: %.2fx @2, %.2fx @4, %.2fx @8\n", serial / tets[0],
              serial / tets[1], serial / tets[2]);
  std::printf("recording cost: %zu trace events, %zu metric series, "
              "overhead %.2f%% (gate < %d%%)\n",
              trace_events, metric_series, overhead_pct, max_overhead_pct);

  const std::string path = bench::write_bench_json(
      "observability",
      {
          {"pairs", strformat("%d", pairs)},
          {"reps", strformat("%d", reps)},
          {"workers", "[2, 4, 8]"},
          {"tet_s", strformat("[%.3f, %.3f, %.3f]", tets[0], tets[1],
                              tets[2])},
          {"median_tet_s", strformat("%.3f", median_tet)},
          {"speedup", strformat("[%.3f, %.3f, %.3f]", serial / tets[0],
                                serial / tets[1], serial / tets[2])},
          {"wall_off_s", strformat("%.4f", wall_off_total)},
          {"wall_on_s", strformat("%.4f", wall_on_total)},
          {"trace_events", strformat("%zu", trace_events)},
          {"metric_series", strformat("%zu", metric_series)},
          {"tracing_overhead_pct", strformat("%.3f", overhead_pct)},
          {"overhead_gate_pct", strformat("%d", max_overhead_pct)},
      });
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());

  if (overhead_pct >= static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr, "FAIL: tracing overhead %.2f%% >= %d%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
