#pragma once

/// \file vm.hpp
/// The virtual-machine catalogue (paper Table 1) and VM instances of the
/// simulated EC2 region.

#include <string>
#include <string_view>
#include <vector>

namespace scidock::cloud {

/// An EC2 instance type. speed_factor scales activity durations (1.0 =
/// the paper's reference core, the Xeon E5-2670).
struct VmType {
  std::string name;
  int cores = 1;
  std::string physical_processor;
  double speed_factor = 1.0;
  double hourly_cost_usd = 0.0;

  bool operator==(const VmType&) const = default;
};

/// Table 1: the two instance types the paper used, plus the micro type it
/// mentions for completeness of the catalogue.
const VmType& vm_type_m3_xlarge();
const VmType& vm_type_m3_2xlarge();
const VmType& vm_type_t1_micro();
const std::vector<VmType>& vm_catalogue();
/// Lookup by name; throws NotFoundError.
const VmType& vm_type_by_name(std::string_view name);

/// A booted (or booting) instance in the virtual cluster.
struct VmInstance {
  long long id = 0;
  VmType type;
  /// Per-instance performance multiplier: cloud VMs of the same type do
  /// not perform identically (virtualisation noise, noisy neighbours);
  /// drawn around 1.0 when the instance is acquired.
  double performance_jitter = 1.0;
  double boot_completed_at = 0.0;  ///< simulation time the VM became usable
  double released_at = -1.0;       ///< < 0 while the instance is alive

  bool alive() const { return released_at < 0.0; }
  /// Effective duration multiplier for work on this VM (lower = faster).
  double slowdown() const { return performance_jitter / type.speed_factor; }
};

}  // namespace scidock::cloud
