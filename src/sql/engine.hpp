#pragma once

/// \file engine.hpp
/// SQL execution over a Database: nested-loop joins with conjunct
/// push-down, grouping/aggregation, ordering and projection. The paper's
/// provenance queries (Query 1, Query 2, the Figure 5 histogram query)
/// execute through this engine verbatim.

#include <string>
#include <string_view>
#include <vector>

#include "sql/ast.hpp"
#include "sql/table.hpp"

namespace scidock::sql {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Aligned-columns rendering, header + separator + rows (the style of
  /// the paper's Figure 10/11 screenshots).
  std::string to_text() const;
};

/// Result-column name the engine derives for a select item: the alias if
/// present, else the column / call name, else the expression text.
/// Exposed for the sharded executor (sql/sharded.hpp), which must emit
/// headers identical to a single-shard run.
std::string derive_select_column_name(const SelectItem& item);

class Engine {
 public:
  explicit Engine(Database& db) : db_(db) {}

  /// Parse and run one statement. SELECT returns its rows; CREATE/INSERT/
  /// DELETE return an empty result (DELETE reports the removed-row count
  /// in a single cell).
  ResultSet execute(std::string_view sql);

  ResultSet execute_select(const SelectStmt& stmt);

 private:
  Database& db_;
};

}  // namespace scidock::sql
