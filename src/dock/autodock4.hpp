#pragma once

/// \file autodock4.hpp
/// AutoDock 4 analog: Lamarckian genetic algorithm over precomputed grid
/// maps (Morris et al. 1998). Each GA run evolves a population of poses;
/// a fraction of each generation additionally undergoes Solis-Wets local
/// search whose result is written back into the genome (the "Lamarckian"
/// step). Results are RMSD-clustered as in the real .dlg output.

#include "dock/dpf.hpp"
#include "dock/engine.hpp"
#include "dock/grid.hpp"

namespace scidock::dock {

class Autodock4Engine : public DockingEngine {
 public:
  explicit Autodock4Engine(DockingParameterFile params = {});

  std::string name() const override { return "AutoDock4"; }

  /// Computes grid maps internally (activity 5) and then runs the LGA.
  DockingResult dock(const mol::PreparedReceptor& receptor,
                     const mol::PreparedLigand& ligand, const GridBox& box,
                     Rng& rng) override;

  /// Dock against maps that activity 5 already produced (the real SciDock
  /// data flow, where AutoGrid output is staged on the shared FS).
  DockingResult dock_with_maps(const GridMapSet& maps,
                               const mol::PreparedLigand& ligand, Rng& rng);

  const DockingParameterFile& params() const { return params_; }

 private:
  DockingParameterFile params_;
};

}  // namespace scidock::dock
