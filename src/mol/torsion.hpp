#pragma once

/// \file torsion.hpp
/// Rotatable-bond detection and the torsion tree ("BRANCH tree") that
/// PDBQT files encode and that both docking engines search over.
///
/// A ligand conformation is parameterised as: a rigid root fragment posed
/// by (rotation, translation) plus one dihedral angle per rotatable bond.
/// apply() maps a parameter vector to concrete atom coordinates.

#include <vector>

#include "mol/geometry.hpp"
#include "mol/molecule.hpp"

namespace scidock::mol {

/// One rotatable bond: rotating `moving_atoms` about the axis
/// atom_from -> atom_to. Branches are ordered so that a parent branch's
/// rotation is applied before its children (preorder).
struct TorsionBranch {
  int atom_from = 0;              ///< fixed-side pivot atom index
  int atom_to = 0;                ///< moving-side pivot atom index
  std::vector<int> moving_atoms;  ///< atoms displaced by this torsion
  int parent = -1;                ///< index of parent branch, -1 = root
};

class TorsionTree {
 public:
  /// Build from a perceived molecule. Rotatable bonds are acyclic single
  /// bonds whose removal leaves >= `min_fragment` heavy atoms on each side
  /// (terminal bonds like -CH3 are not worth a degree of freedom in AD4's
  /// default TORSDOF counting; min_fragment=2 reproduces that).
  static TorsionTree build(const Molecule& m, int min_fragment = 2);

  /// Assemble directly from branch records (used by the PDBQT reader,
  /// which recovers the tree from ROOT/BRANCH markers).
  static TorsionTree from_branches(std::vector<TorsionBranch> branches,
                                   std::vector<int> root_atoms);

  int torsion_count() const { return static_cast<int>(branches_.size()); }
  const std::vector<TorsionBranch>& branches() const { return branches_; }
  const std::vector<int>& root_atoms() const { return root_atoms_; }

  /// Degrees of freedom of the full pose: 3 translation + 3 rotation +
  /// one per torsion (the "TORSDOF" of PDBQT).
  int degrees_of_freedom() const { return 6 + torsion_count(); }

  /// Produce coordinates from reference coordinates + pose + torsions.
  /// `torsion_angles` must have torsion_count() entries (radians).
  /// The rigid pose rotates about the reference root-fragment centroid.
  std::vector<Vec3> apply(const std::vector<Vec3>& reference,
                          const Pose& pose,
                          const std::vector<double>& torsion_angles) const;

 private:
  std::vector<TorsionBranch> branches_;
  std::vector<int> root_atoms_;
};

}  // namespace scidock::mol
