file(REMOVE_RECURSE
  "CMakeFiles/redock_refinement.dir/redock_refinement.cpp.o"
  "CMakeFiles/redock_refinement.dir/redock_refinement.cpp.o.d"
  "redock_refinement"
  "redock_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redock_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
