#!/usr/bin/env bash
# ci/check.sh — the full local verification matrix.
#
# Stages (each one configure + build + ctest in its own build tree):
#   default   plain build, full suite minus bench-smoke — the tier-1 gate
#   scalar    SCIDOCK_SIMD_SCALAR=ON: the forced-scalar reference backend
#             of util/simd.hpp, full suite minus bench-smoke — proves the
#             batched docking path is equivalent without any vector ISA
#   native    -march=native + undefined sanitizer, kernel suite: exercises
#             the widest backend the host offers (AVX2 where available)
#             with FMA contraction on, under UBSan
#   lockdep   SCIDOCK_LOCKDEP=ON: full suite (the analyzer rides along
#             under every test), the lockdep negative controls, and the
#             bench_lockdep overhead gate at the real 10x42 workload
#   racer     SCIDOCK_RACER=ON: full suite (the happens-before analyzer
#             rides along under every test, asserting the default suite
#             racer-clean), the planted-race negative controls, and the
#             bench_racer overhead gate at the real 10x42 workload
#   clang     clang++ + -Wthread-safety -Werror=thread-safety (wired in
#             CMakeLists.txt for any Clang build): the GUARDED_BY audit
#             as a hard compile gate. Skips with a notice when clang++
#             is not installed.
#   asan      address sanitizer  + lockdep, concurrency-heavy labels
#   ubsan     undefined sanitizer + lockdep, concurrency-heavy labels
#   tsan      thread sanitizer   + lockdep, concurrency-heavy labels
#   racer_tsan  cross-check leg: the planted-race fixtures run under the
#             racer AND ThreadSanitizer in one binary; each fixture must
#             be flagged by both detectors (a finding one sees and the
#             other misses fails the leg)
#
# The sanitizer stages run the concurrency-heavy labels only
# (chaos/kernels/lockdep/racer/prov-recovery): those are the suites that
# stress the executors, the docking kernels, the lock/race discipline and
# the WAL group-commit/recovery path, where sanitizers earn their ~10x
# slowdown.
#
# Usage: ci/check.sh [stage ...]     (default: all stages, in order)
#   e.g. ci/check.sh scalar tsan

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SANITIZER_LABELS='chaos|kernels|lockdep|racer|prov-recovery'

run_ctest() { # dir, extra ctest args...
  local dir="$1"
  shift
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "$@")
}

configure_and_build() { # dir, cmake args...
  local dir="$1"
  shift
  cmake -B "$dir" -S "$REPO_ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
}

stage_default() {
  local dir="$REPO_ROOT/build-ci-default"
  configure_and_build "$dir"
  run_ctest "$dir" -LE bench-smoke
  # Acceptance gate: the crash-recovery matrix runs (and is reported) as
  # its own leg, so a recovery regression is unmissable in the CI log.
  run_ctest "$dir" -L prov-recovery
}

stage_scalar() {
  local dir="$REPO_ROOT/build-ci-scalar"
  configure_and_build "$dir" -DSCIDOCK_SIMD_SCALAR=ON
  run_ctest "$dir" -LE bench-smoke
  # The kernel bench still runs under the scalar backend (its SIMD
  # speedup gates auto-relax to >= 1x there) so the JSON records the
  # reference-backend numbers alongside the vector ones.
  (cd "$dir" && ./bench/bench_micro_kernels)
}

stage_native() {
  local dir="$REPO_ROOT/build-ci-native"
  configure_and_build "$dir" \
    -DSCIDOCK_NATIVE_ARCH=ON -DSCIDOCK_SANITIZE=undefined \
    -DSCIDOCK_BUILD_BENCH=OFF -DSCIDOCK_BUILD_EXAMPLES=OFF
  # Kernels only: this leg exists to run the widest SIMD backend (and the
  # FMA-contracted scalar reference) under UBSan, not to re-run the
  # whole matrix with non-portable codegen.
  run_ctest "$dir" -L kernels
}

stage_lockdep() {
  local dir="$REPO_ROOT/build-ci-lockdep"
  configure_and_build "$dir" -DSCIDOCK_LOCKDEP=ON
  run_ctest "$dir" -LE bench-smoke
  # Acceptance gate: the enabled analyzer stays within 5% of baseline on
  # the full screen; writes BENCH_lockdep.json into the build tree.
  (cd "$dir" && ./bench/bench_lockdep)
}

stage_racer() {
  local dir="$REPO_ROOT/build-ci-racer"
  configure_and_build "$dir" -DSCIDOCK_RACER=ON
  run_ctest "$dir" -LE bench-smoke
  # Acceptance gate: the enabled analyzer stays within 10% of baseline on
  # the full screen; writes BENCH_racer.json into the build tree.
  (cd "$dir" && ./bench/bench_racer)
}

stage_clang() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "ci/check.sh: notice: clang++ not found; skipping the"          "thread-safety-analysis leg (GUARDED_BY audit not compile-checked"          "on this host)"
    return 0
  fi
  local dir="$REPO_ROOT/build-ci-clang"
  # The build itself is the gate: CMakeLists.txt adds -Wthread-safety
  # -Werror=thread-safety under any Clang compiler, so an unguarded
  # access to a SCIDOCK_GUARDED_BY member fails right here. Tests are
  # covered by the GCC legs; compiling the whole tree (tests and bench
  # included) is what exercises every annotation.
  configure_and_build "$dir" -DCMAKE_CXX_COMPILER=clang++     -DSCIDOCK_LOCKDEP=ON -DSCIDOCK_RACER=ON
  run_ctest "$dir" -L 'lockdep|racer'
}

stage_racer_tsan() {
  local dir="$REPO_ROOT/build-ci-racer-tsan"
  configure_and_build "$dir"     -DSCIDOCK_RACER=ON -DSCIDOCK_SANITIZE=thread     -DSCIDOCK_BUILD_BENCH=OFF -DSCIDOCK_BUILD_EXAMPLES=OFF
  # Cross-check: each planted fixture contains a REAL race. The racer
  # must name the RC code on stdout and ThreadSanitizer must print its
  # own data-race warning on stderr — one binary, two detectors, and a
  # finding that only one of them sees fails the leg.
  local fixture rc_code out err
  for fixture in ww:RC001 rw:RC002 publish:RC003; do
    rc_code="${fixture#*:}"
    out="$dir/racer-planted-${fixture%%:*}.out"
    err="$dir/racer-planted-${fixture%%:*}.err"
    # TSan must not kill the process (the racer report comes after the
    # race); halt_on_error=0 + exitcode=0 turn the warning into log-only.
    TSAN_OPTIONS='halt_on_error=0 exitcode=0'       "$dir/tests/racer_planted" "${fixture%%:*}" >"$out" 2>"$err"
    grep -q "$rc_code" "$out" || {
      echo "ci/check.sh: racer_tsan: racer missed $rc_code in fixture"            "${fixture%%:*}" >&2
      cat "$out" "$err" >&2
      exit 1
    }
    grep -q 'WARNING: ThreadSanitizer: data race' "$err" || {
      echo "ci/check.sh: racer_tsan: TSan missed the race in fixture"            "${fixture%%:*} (racer reported $rc_code)" >&2
      cat "$out" "$err" >&2
      exit 1
    }
    echo "racer_tsan: fixture ${fixture%%:*} flagged by both detectors"          "($rc_code + TSan)"
  done
}

stage_sanitizer() { # name, cmake SCIDOCK_SANITIZE value
  local name="$1" sanitize="$2"
  local dir="$REPO_ROOT/build-ci-$name"
  configure_and_build "$dir" \
    -DSCIDOCK_SANITIZE="$sanitize" -DSCIDOCK_LOCKDEP=ON \
    -DSCIDOCK_BUILD_BENCH=OFF -DSCIDOCK_BUILD_EXAMPLES=OFF
  run_ctest "$dir" -L "$SANITIZER_LABELS"
}

stage_asan() { stage_sanitizer asan address; }
stage_ubsan() { stage_sanitizer ubsan undefined; }
stage_tsan() { stage_sanitizer tsan thread; }

STAGES=("$@")
if [ "${#STAGES[@]}" -eq 0 ]; then
  STAGES=(default scalar native lockdep racer clang asan ubsan tsan racer_tsan)
fi

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default | scalar | native | lockdep | racer | clang | asan | ubsan | tsan | racer_tsan) ;;
    *)
      echo "ci/check.sh: unknown stage '$stage'" >&2
      echo "stages: default scalar native lockdep racer clang asan ubsan tsan racer_tsan" >&2
      exit 2
      ;;
  esac
done

for stage in "${STAGES[@]}"; do
  echo
  echo "==== ci/check.sh stage: $stage ===="
  "stage_$stage"
done

echo
echo "ci/check.sh: all stages passed (${STAGES[*]})"
