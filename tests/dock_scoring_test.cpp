// Unit tests for the docking substrate: grid boxes/maps, scoring terms,
// neighbour lists, parameter files.

#include <gtest/gtest.h>

#include <cmath>

#include "dock/autogrid.hpp"
#include "dock/dpf.hpp"
#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/molecule.hpp"
#include "util/error.hpp"

namespace scidock::dock {
namespace {

using mol::AdType;
using mol::Element;
using mol::Vec3;

// ---------------------------------------------------------------- grid

TEST(GridBox, GeometryInvariants) {
  GridBox box;
  box.center = {10, 20, 30};
  box.npts = {41, 41, 21};
  box.spacing = 0.5;
  const Vec3 ext = box.extent();
  EXPECT_DOUBLE_EQ(ext.x, 20.0);
  EXPECT_DOUBLE_EQ(ext.z, 10.0);
  EXPECT_TRUE(box.contains(box.center));
  EXPECT_TRUE(box.contains(box.origin()));
  EXPECT_FALSE(box.contains(box.center + Vec3{11, 0, 0}));
  EXPECT_EQ(box.total_points(), 41u * 41u * 21u);
  const mol::Aabb b = box.bounds();
  EXPECT_NEAR(b.center().x, box.center.x, 1e-12);
}

TEST(GridBox, AroundCoversRequestedExtent) {
  const GridBox box = GridBox::around({0, 0, 0}, 8.0, 0.5);
  EXPECT_TRUE(box.contains({7.9, 0, 0}));
  EXPECT_TRUE(box.contains({0, -7.9, 0}));
}

TEST(GridMap, IndexingAndSampling) {
  GridBox box;
  box.center = {0, 0, 0};
  box.npts = {3, 3, 3};
  box.spacing = 1.0;
  GridMap map(box, "C");
  // Linear field f = x so trilinear interpolation is exact.
  for (int iz = 0; iz < 3; ++iz)
    for (int iy = 0; iy < 3; ++iy)
      for (int ix = 0; ix < 3; ++ix) {
        map.at(ix, iy, iz) = box.origin().x + ix * box.spacing;
      }
  EXPECT_DOUBLE_EQ(map.sample({0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(map.sample({0.25, 0.3, -0.4}), 0.25);
  EXPECT_DOUBLE_EQ(map.sample({-0.75, 0, 0}), -0.75);
}

TEST(GridMap, OutOfBoxIsPenalised) {
  GridBox box;
  box.npts = {3, 3, 3};
  box.spacing = 1.0;
  GridMap map(box, "C");
  EXPECT_DOUBLE_EQ(map.sample({100, 0, 0}), GridMap::kOutOfBoxPenalty);
  EXPECT_DOUBLE_EQ(map.sample({0, -100, 0}), GridMap::kOutOfBoxPenalty);
}

TEST(GridMap, MapFileRoundTrip) {
  GridBox box;
  box.center = {1.5, -2.0, 3.25};
  box.npts = {4, 3, 2};
  box.spacing = 0.375;
  GridMap map(box, "OA");
  for (std::size_t i = 0; i < map.values().size(); ++i) {
    map.values()[i] = static_cast<double>(i) * 0.25 - 1.0;
  }
  const GridMap back = GridMap::from_map_file(map.to_map_file());
  EXPECT_EQ(back.label(), "OA");
  EXPECT_EQ(back.box().npts, box.npts);
  EXPECT_NEAR(back.box().center.z, box.center.z, 1e-6);
  for (std::size_t i = 0; i < map.values().size(); ++i) {
    EXPECT_NEAR(back.values()[i], map.values()[i], 1e-3);
  }
}

TEST(GridMap, FromMapFileRejectsCountMismatch) {
  GridBox box;
  box.npts = {2, 2, 2};
  GridMap map(box, "C");
  std::string text = map.to_map_file();
  text += "42.0\n";  // one value too many
  EXPECT_THROW(GridMap::from_map_file(text), ParseError);
}

// -------------------------------------------------------------- scoring

TEST(Scoring, DielectricIncreasesWithDistance) {
  EXPECT_LT(mehler_solmajer_dielectric(1.0), mehler_solmajer_dielectric(5.0));
  EXPECT_LT(mehler_solmajer_dielectric(5.0), mehler_solmajer_dielectric(20.0));
  EXPECT_NEAR(mehler_solmajer_dielectric(100.0), 78.4, 1.0);  // bulk water
}

TEST(Scoring, Ad4VdwHasWellAtEquilibrium) {
  const double req = mol::ad_type_params(AdType::C).rii;  // C-C optimum
  const Ad4Weights w;
  const double at_opt = ad4_vdw_hbond(AdType::C, AdType::C, req, w);
  EXPECT_LT(at_opt, 0.0);
  EXPECT_LT(at_opt, ad4_vdw_hbond(AdType::C, AdType::C, req + 1.5, w));
  EXPECT_LT(at_opt, ad4_vdw_hbond(AdType::C, AdType::C, req - 1.0, w));
  // Repulsive wall is clamped, not infinite.
  EXPECT_LE(ad4_vdw_hbond(AdType::C, AdType::C, 0.1, w), w.vdw * 100.0 + 1e-9);
}

TEST(Scoring, HbondPairUsesDeeperWell) {
  const Ad4Weights w;
  // OA-HD at the 1.9 Å hydrogen-bond optimum is far deeper than a generic
  // vdW contact at its own optimum.
  const double hbond = ad4_vdw_hbond(AdType::OA, AdType::HD, 1.9, w);
  const double vdw = ad4_vdw_hbond(AdType::C, AdType::C, 4.0, w);
  EXPECT_LT(hbond, vdw);
  EXPECT_NEAR(hbond, -5.0 * w.hbond, 1e-9);
}

TEST(Scoring, Ad4PairElectrostaticsSign) {
  const Ad4Weights w;
  const double attract = ad4_pair_energy(AdType::C, 0.5, AdType::C, -0.5, 6.0, w);
  const double repel = ad4_pair_energy(AdType::C, 0.5, AdType::C, 0.5, 6.0, w);
  EXPECT_LT(attract, repel);
}

TEST(Scoring, VinaTermsVanishBeyondCutoff) {
  EXPECT_DOUBLE_EQ(vina_pair_energy(AdType::C, AdType::C, 8.0), 0.0);
  EXPECT_DOUBLE_EQ(vina_pair_energy(AdType::C, AdType::C, 100.0), 0.0);
}

TEST(Scoring, VinaHydrogensSkip) {
  EXPECT_DOUBLE_EQ(vina_pair_energy(AdType::H, AdType::C, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(vina_pair_energy(AdType::HD, AdType::OA, 1.9), 0.0);
}

TEST(Scoring, VinaSurfaceContactIsAttractive) {
  const auto kc = mol::vina_kind(AdType::C);
  const double touch = 2.0 * kc.radius;  // surface distance 0
  EXPECT_LT(vina_pair_energy(AdType::C, AdType::C, touch), 0.0);
}

TEST(Scoring, VinaOverlapIsRepulsive) {
  const auto kc = mol::vina_kind(AdType::C);
  const double overlapping = 2.0 * kc.radius - 1.5;
  EXPECT_GT(vina_pair_energy(AdType::C, AdType::C, overlapping), 0.0);
}

TEST(Scoring, VinaHbondDeepensPolarContact) {
  const auto ko = mol::vina_kind(AdType::OA);
  const auto kn = mol::vina_kind(AdType::NA);
  const double r = ko.radius + kn.radius - 0.7;
  const double polar = vina_pair_energy(AdType::OA, AdType::NA, r);
  (void)polar;
  // OA-OA is acceptor-acceptor: no H-bond term; OA-N (donor-less) neither.
  // Compare donor-acceptor vs acceptor-acceptor at the same surface dist.
  const double da = vina_pair_energy(AdType::OA, AdType::Mg, r);
  (void)da;
  // Direct check: the hbond ramp fires only for donor/acceptor pairs.
  VinaWeights w;
  const double base = vina_pair_energy(AdType::OA, AdType::OA,
                                       2 * ko.radius - 0.7, w);
  w.hbond = 0.0;
  const double no_hb = vina_pair_energy(AdType::OA, AdType::OA,
                                        2 * ko.radius - 0.7, w);
  EXPECT_DOUBLE_EQ(base, no_hb);  // OA-OA has no donor: term never fired
}

TEST(Scoring, VinaAffinityTorsionPenalty) {
  EXPECT_DOUBLE_EQ(vina_affinity(-10.0, 0), -10.0);
  EXPECT_GT(vina_affinity(-10.0, 8), -10.0);  // shallower with rotors
  EXPECT_LT(vina_affinity(-10.0, 8), 0.0);
}

// -------------------------------------------------------- neighbour list

mol::Molecule scattered_atoms() {
  mol::Molecule m{"grid"};
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 5; ++y) {
      mol::Atom a;
      a.element = Element::C;
      a.pos = {x * 3.0, y * 3.0, 0.0};
      m.add_atom(a);
    }
  return m;
}

TEST(NeighborList, FindsExactlyAtomsWithinCutoff) {
  const mol::Molecule m = scattered_atoms();
  const NeighborList nl(m, 5.0);
  int found = 0;
  nl.for_each_within({0, 0, 0}, [&](int idx, double d2) {
    EXPECT_LE(d2, 25.0 + 1e-9);
    EXPECT_GE(idx, 0);
    ++found;
  });
  // Within 5 Å of the corner: (0,0),(3,0),(0,3),(3,3) = 4 atoms.
  EXPECT_EQ(found, 4);
}

TEST(NeighborList, MatchesBruteForceEverywhere) {
  const mol::Molecule m = scattered_atoms();
  const NeighborList nl(m, 4.2);
  for (double qx : {-1.0, 2.5, 7.0, 13.0}) {
    for (double qy : {0.0, 6.1, 12.0}) {
      const Vec3 q{qx, qy, 0.5};
      int fast = 0;
      nl.for_each_within(q, [&](int, double) { ++fast; });
      int brute = 0;
      for (const mol::Atom& a : m.atoms()) {
        if (mol::distance_sq(a.pos, q) <= 4.2 * 4.2) ++brute;
      }
      EXPECT_EQ(fast, brute) << qx << "," << qy;
    }
  }
}

TEST(IntramolecularPairs, ExcludesNearBondedPairs) {
  // Linear chain of 5 atoms: pairs at graph distance >= 3 are (0,3), (0,4),
  // (1,4).
  mol::Molecule m{"chain"};
  for (int i = 0; i < 5; ++i) {
    mol::Atom a;
    a.element = Element::C;
    a.pos = {i * 1.5, 0, 0};
    m.add_atom(a);
  }
  for (int i = 0; i + 1 < 5; ++i) m.add_bond(i, i + 1);
  m.perceive();
  const auto pairs = intramolecular_pairs(m);
  EXPECT_EQ(pairs.size(), 3u);
  for (const auto& [i, j] : pairs) EXPECT_GE(j - i, 3);
}

// ------------------------------------------------------------- autogrid

TEST(Autogrid, MapsHaveWellsNearAtoms) {
  mol::Molecule rec{"R"};
  mol::Atom a;
  a.element = Element::C;
  a.pos = {0, 0, 0};
  rec.add_atom(a);
  rec.perceive();
  GridMapCalculator calc(rec);
  GridBox box = GridBox::around({0, 0, 0}, 6.0, 0.5);
  const GridMapSet maps = calc.calculate(box, {AdType::C});
  const GridMap* cmap = maps.affinity_for(AdType::C);
  ASSERT_NE(cmap, nullptr);
  // At the C-C optimum (4 Å) the affinity is negative; on top of the atom
  // it is strongly positive.
  EXPECT_LT(cmap->sample({4.0, 0, 0}), 0.0);
  EXPECT_GT(cmap->sample({0.6, 0, 0}), 0.0);
  EXPECT_EQ(maps.affinity_for(AdType::OA), nullptr);
  EXPECT_EQ(maps.file_count(), 1 + 4);
}

TEST(Autogrid, ElectrostaticMapSignTracksCharge) {
  mol::Molecule rec{"R"};
  mol::Atom a;
  a.element = Element::O;
  a.pos = {0, 0, 0};
  a.partial_charge = -0.5;
  rec.add_atom(a);
  rec.perceive();
  rec.mutable_atom(0).partial_charge = -0.5;
  rec.perceive();
  GridMapCalculator calc(rec);
  const GridMapSet maps = calc.calculate(GridBox::around({0, 0, 0}, 5.0, 0.5),
                                         {AdType::C});
  // A negative receptor charge makes the unit-positive-charge map negative.
  EXPECT_LT(maps.electrostatic.sample({3.0, 0, 0}), 0.0);
}

TEST(Gpf, RoundTrip) {
  GridParameterFile gpf;
  gpf.box = GridBox::around({1, 2, 3}, 10.0, 0.375);
  gpf.ligand_types = {AdType::C, AdType::OA, AdType::HD};
  gpf.receptor_file = "2HHN.pdbqt";
  const GridParameterFile back = GridParameterFile::parse(gpf.to_text());
  EXPECT_EQ(back.box.npts, gpf.box.npts);
  EXPECT_NEAR(back.box.center.y, 2.0, 1e-6);
  EXPECT_EQ(back.ligand_types, gpf.ligand_types);
  EXPECT_EQ(back.receptor_file, "2HHN.pdbqt");
}

TEST(Gpf, ParseRejectsMissingNpts) {
  EXPECT_THROW(GridParameterFile::parse("spacing 0.375\n"), ParseError);
}

// ----------------------------------------------------------------- DPF

TEST(Dpf, RoundTrip) {
  DockingParameterFile dpf;
  dpf.ligand_file = "lig.pdbqt";
  dpf.receptor_maps_prefix = "receptor";
  dpf.ga_runs = 7;
  dpf.ga_pop_size = 33;
  dpf.ga_num_evals = 12345;
  dpf.seed = 99;
  const DockingParameterFile back = DockingParameterFile::parse(dpf.to_text());
  EXPECT_EQ(back.ligand_file, "lig.pdbqt");
  EXPECT_EQ(back.receptor_maps_prefix, "receptor");
  EXPECT_EQ(back.ga_runs, 7);
  EXPECT_EQ(back.ga_pop_size, 33);
  EXPECT_EQ(back.ga_num_evals, 12345);
  EXPECT_EQ(back.seed, 99u);
}

TEST(VinaConfigFile, RoundTrip) {
  VinaConfig cfg;
  cfg.receptor_file = "rec.pdbqt";
  cfg.ligand_file = "lig.pdbqt";
  cfg.box = GridBox::around({5, 6, 7}, 9.0, 0.375);
  cfg.exhaustiveness = 12;
  cfg.num_modes = 4;
  cfg.seed = 31337;
  const VinaConfig back = VinaConfig::parse(cfg.to_text());
  EXPECT_EQ(back.receptor_file, "rec.pdbqt");
  EXPECT_EQ(back.exhaustiveness, 12);
  EXPECT_EQ(back.num_modes, 4);
  EXPECT_EQ(back.seed, 31337u);
  EXPECT_NEAR(back.box.center.x, 5.0, 1e-6);
  EXPECT_NEAR(back.box.extent().x, cfg.box.extent().x, 0.5);
}

}  // namespace
}  // namespace scidock::dock
