// Micro-kernel benchmarks (google-benchmark): the hot paths underneath
// the workflow — grid generation, energy evaluation, neighbour queries,
// torsion application, parsers and the SQL engine.
//
// After the google-benchmark tables, main() runs the kernel perf report:
// timed analytic-vs-LUT comparisons, scalar-vs-SIMD batched kernels,
// serial-vs-parallel AutoGrid and the grid-map-reuse pipeline A/B, written
// to BENCH_kernels.json with the acceptance gates enforced (LUT >= 3x on
// the AD4 pair kernel; batched AD4 pair term and batched trilinear
// sampling >= 2x over scalar on a wide-SIMD build, non-regression
// within timing noise otherwise;
// >= 30% lower AutoGrid time at 8 threads; cache hit rate at the level
// the workload's pair/receptor counts make attainable, with counters
// reconciled against PROV-Wf by the chaos InvariantChecker).
//
// Knobs: SCIDOCK_KERNEL_RECEPTORS / SCIDOCK_KERNEL_LIGANDS shrink the
// pipeline A/B workload for smoke runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "chaos/invariants.hpp"
#include "data/generator.hpp"
#include "data/table2.hpp"
#include "dock/autogrid.hpp"
#include "dock/energy_lut.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"
#include "mol/charges.hpp"
#include "dock/energy.hpp"
#include "dock/vina.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/prepare.hpp"
#include "obs/obs.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"
#include "scidock/scidock.hpp"
#include "sql/engine.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "wf/spec.hpp"
#include "xml/xml.hpp"

namespace {

using namespace scidock;

data::GeneratorOptions bench_opts() {
  data::GeneratorOptions o;
  o.min_residues = 24;
  o.max_residues = 48;
  o.hg_fraction = 0.0;
  return o;
}

struct DockFixture {
  mol::PreparedReceptor receptor;
  mol::PreparedLigand ligand;
  dock::GridBox box;

  static const DockFixture& get() {
    static const DockFixture fixture = [] {
      const auto opts = bench_opts();
      mol::PreparedReceptor rec =
          mol::prepare_receptor(data::make_receptor("2HHN", opts));
      mol::PreparedLigand lig = mol::prepare_ligand(data::make_ligand("0E6"));
      dock::GridBox box =
          dock::GridBox::around(rec.molecule.center(), 10.0, 0.55);
      return DockFixture{std::move(rec), std::move(lig), box};
    }();
    return fixture;
  }
};

void BM_AutogridMapGeneration(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::GridMapCalculator calc(fx.receptor.molecule);
  mol::Molecule lig = fx.ligand.molecule;
  lig.perceive();
  const auto types = lig.ad_types_present();
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.calculate(fx.box, types));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.box.total_points()));
}
BENCHMARK(BM_AutogridMapGeneration)->Unit(benchmark::kMillisecond);

void BM_Ad4GridEnergyEvaluation(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::GridMapCalculator calc(fx.receptor.molecule);
  mol::Molecule lig = fx.ligand.molecule;
  lig.perceive();
  const dock::GridMapSet maps = calc.calculate(fx.box, lig.ad_types_present());
  const dock::Ad4EnergyModel model(maps, fx.ligand);
  Rng rng(1);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    pose.mutate(0.1, 0.05, 0.1, rng);
    benchmark::DoNotOptimize(model(pose));
  }
}
BENCHMARK(BM_Ad4GridEnergyEvaluation)->Unit(benchmark::kMicrosecond);

void BM_VinaDirectEnergyEvaluation(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  Rng rng(1);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    pose.mutate(0.1, 0.05, 0.1, rng);
    benchmark::DoNotOptimize(model(pose));
  }
}
BENCHMARK(BM_VinaDirectEnergyEvaluation)->Unit(benchmark::kMicrosecond);

void BM_NeighborListQuery(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::NeighborList nl(fx.receptor.molecule, 8.0);
  Rng rng(2);
  double acc = 0.0;
  for (auto _ : state) {
    const mol::Vec3 q{rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
    nl.for_each_within(q, [&acc](int, double d2) { acc += d2; });
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NeighborListQuery);

void BM_TorsionTreeApply(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const auto ref = fx.ligand.molecule.coordinates();
  Rng rng(3);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, {0, 0, 0}, fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.ligand.torsions.apply(ref, pose.rigid, pose.torsions));
  }
}
BENCHMARK(BM_TorsionTreeApply);

void BM_PdbParse(benchmark::State& state) {
  const std::string text = mol::write_pdb(data::make_receptor("1HUC", bench_opts()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mol::read_pdb(text, "1HUC"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_PdbParse)->Unit(benchmark::kMicrosecond);

void BM_PdbqtLigandRoundTrip(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mol::read_pdbqt(fx.ligand.pdbqt));
  }
}
BENCHMARK(BM_PdbqtLigandRoundTrip);

void BM_GasteigerCharges(benchmark::State& state) {
  const mol::Molecule lig = data::make_ligand("042");
  for (auto _ : state) {
    mol::Molecule copy = lig;
    mol::assign_gasteiger_charges(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_GasteigerCharges);

void BM_XmlSpecParse(benchmark::State& state) {
  const std::string xml = wf::save_spec(core::scidock_workflow_def());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wf::load_spec(xml));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlSpecParse);

void BM_SqlQuery1OverProvenance(benchmark::State& state) {
  // A provenance store with ~7k activation rows, as after a 1k-pair run.
  prov::ProvenanceStore store;
  const long long wkfid = store.begin_workflow("SciDock", "", "/x/", 0.0);
  Rng rng(7);
  std::vector<long long> actids;
  for (const char* tag : {"babel", "prepligand", "prepreceptor", "gpfprep",
                          "autogrid", "dockfilter", "autodock4"}) {
    actids.push_back(store.register_activity(wkfid, tag, "./cmd", "MAP"));
  }
  double t = 0.0;
  for (int i = 0; i < 7000; ++i) {
    const long long id = store.begin_activation(
        actids[static_cast<std::size_t>(i) % actids.size()], wkfid, t, 1, "p");
    t += rng.uniform(0.5, 3.0);
    store.end_activation(id, t, prov::kStatusFinished, 0, 1);
  }
  const std::string query = core::query1(wkfid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(query));
  }
}
BENCHMARK(BM_SqlQuery1OverProvenance)->Unit(benchmark::kMillisecond);

void BM_SolisWetsLocalSearch(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  Rng rng(5);
  for (auto _ : state) {
    dock::DockPose pose = dock::DockPose::random(
        fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(),
        rng);
    double energy = 0.0;
    benchmark::DoNotOptimize(dock::solis_wets(pose, model, rng, 30, energy));
  }
}
BENCHMARK(BM_SolisWetsLocalSearch)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------
// Kernel perf report (BENCH_kernels.json) with acceptance gates.
// ------------------------------------------------------------------

/// Wall-time `body` (which evaluates `evals_per_rep` kernel calls),
/// growing the repetition count until the measurement window is long
/// enough to trust, and keeping the *minimum* per-rep time across
/// windows (cancels scheduler noise on shared machines).
template <typename F>
double ns_per_eval(std::size_t evals_per_rep, F&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up (touch tables, fault pages)
  long long reps = 1;
  double best_s = 1e300;
  for (int window = 0; window < 64; ++window) {
    const auto t0 = clock::now();
    for (long long r = 0; r < reps; ++r) body();
    const double s =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (s < 0.02) {
      reps *= 4;
      continue;
    }
    best_s = std::min(best_s, s / static_cast<double>(reps));
    if (window >= 2 && best_s < 1e299) break;
  }
  return best_s * 1e9 / static_cast<double>(evals_per_rep);
}

/// Interleaved variant for ratio gates: alternates measurement windows
/// across the competing bodies round-robin, keeping each body's minimum
/// per-rep time — so frequency drift or a noisy co-tenant slows every
/// competitor in the same windows instead of skewing the ratio that the
/// gate checks.
std::vector<double> interleaved_ns_per_eval(
    std::size_t evals_per_rep,
    const std::vector<std::function<void()>>& bodies) {
  using clock = std::chrono::steady_clock;
  const std::size_t n = bodies.size();
  std::vector<long long> reps(n, 1);
  std::vector<double> best(n, 1e300);
  for (const auto& body : bodies) body();  // warm-up
  for (int round = 0; round < 64; ++round) {
    bool settled = true;
    for (std::size_t i = 0; i < n; ++i) {
      const auto t0 = clock::now();
      for (long long r = 0; r < reps[i]; ++r) bodies[i]();
      const double s =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (s < 0.02) {
        reps[i] *= 4;
        settled = false;
        continue;
      }
      best[i] = std::min(best[i], s / static_cast<double>(reps[i]));
    }
    if (round >= 3 && settled) break;
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = best[i] * 1e9 / static_cast<double>(evals_per_rep);
  }
  return out;
}

struct PairSample {
  mol::AdType ti, tj;
  double qi, qj;
  double r2;
};

std::vector<PairSample> make_pair_samples() {
  const auto& types = dock::screening_ligand_types();
  Rng rng(17);
  std::vector<PairSample> samples(4096);
  for (PairSample& s : samples) {
    s.ti = types[rng.below(types.size())];
    s.tj = types[rng.below(types.size())];
    s.qi = rng.uniform(-0.5, 0.5);
    s.qj = rng.uniform(-0.5, 0.5);
    const double r = rng.uniform(1.0, 8.0);
    s.r2 = r * r;
  }
  return samples;
}

int run_kernel_report() {
  using scidock::bench::env_int;
  bench::print_header("SciDock bench: docking kernels",
                      "perf_opt acceptance: LUT >= 3x, SIMD batch >= 2x "
                      "(wide) / no regression, AutoGrid -30% @ 8t, cache "
                      "hit rate >= (pairs - receptors) / pairs");
  int failures = 0;
  const auto gate = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("GATE FAILED: %s\n", what);
      ++failures;
    }
  };

  // ---- pairwise scoring: analytic vs radial LUT -------------------
  const auto samples = make_pair_samples();
  const dock::Ad4Weights ad4_w;
  const auto ad4_tables = dock::Ad4PairTables::shared(ad4_w);
  // The SIMD gates assume real vector width + hardware FMA; narrower
  // backends (2-lane SSE2/NEON, forced scalar) must simply not regress.
  // The batched trilinear sampler is genuinely break-even at 2 lanes
  // (per-lane corner gathers eat the lerp savings), so the non-wide
  // gate carries a 10% allowance for timer noise — it catches real
  // regressions, not scheduler jitter on loaded machines.
  const double simd_threshold = scidock::simd::wide_backend() ? 2.0 : 0.9;
  constexpr int W = scidock::simd::f64x::kWidth;
  const std::size_t nsamp = samples.size();  // 4096: a lane multiple
  std::vector<const double*> batch_rows(nsamp);
  util::aligned_vector<double> batch_qq(nsamp), batch_solv(nsamp),
      batch_r2(nsamp);
  for (std::size_t i = 0; i < nsamp; ++i) {
    const PairSample& s = samples[i];
    batch_rows[i] = ad4_tables->vdw_row(s.ti, s.tj);
    batch_qq[i] = s.qi * s.qj;
    constexpr double kQasp = 0.01097;
    const auto& pi = mol::ad_type_params(s.ti);
    const auto& pj = mol::ad_type_params(s.tj);
    batch_solv[i] = (pi.solpar + kQasp * std::abs(s.qi)) * pj.volume +
                    (pj.solpar + kQasp * std::abs(s.qj)) * pi.volume;
    batch_r2[i] = s.r2;
  }
  // Analytic vs scalar LUT vs batched LUT, interleaved: both gates below
  // are *ratios* of these three.
  const std::vector<double> ad4_ns = interleaved_ns_per_eval(
      samples.size(),
      {[&] {
         double acc = 0.0;
         for (const PairSample& s : samples) {
           acc += dock::ad4_pair_energy(s.ti, s.qi, s.tj, s.qj,
                                        std::sqrt(s.r2), ad4_w);
         }
         benchmark::DoNotOptimize(acc);
       },
       [&] {
         double acc = 0.0;
         for (const PairSample& s : samples) {
           acc += ad4_tables->pair_energy(s.ti, s.qi, s.tj, s.qj, s.r2);
         }
         benchmark::DoNotOptimize(acc);
       },
       [&] {
         scidock::simd::f64x acc;
         for (std::size_t i = 0; i < nsamp; i += W) {
           acc += ad4_tables->pair_energy_lanes(
               batch_rows.data() + i,
               scidock::simd::f64x::load(batch_qq.data() + i),
               scidock::simd::f64x::load(batch_solv.data() + i),
               scidock::simd::f64x::load(batch_r2.data() + i));
         }
         benchmark::DoNotOptimize(acc.hsum());
       }});
  const double ad4_analytic_ns = ad4_ns[0];
  const double ad4_lut_ns = ad4_ns[1];
  const double ad4_batch_ns = ad4_ns[2];
  const double ad4_speedup = ad4_analytic_ns / ad4_lut_ns;
  bench::print_compare("AD4 pair kernel ns/eval",
                       strformat("%.1f analytic", ad4_analytic_ns),
                       strformat("%.1f LUT (%.1fx)", ad4_lut_ns, ad4_speedup));
  gate(ad4_speedup >= 3.0, "AD4 LUT must be >= 3x faster than analytic");

  // ---- batched (SoA/SIMD) pair term vs the scalar LUT path --------
  const double ad4_batch_speedup = ad4_lut_ns / ad4_batch_ns;
  bench::print_compare(
      "AD4 batched pair ns/eval",
      strformat("%.1f scalar LUT", ad4_lut_ns),
      strformat("%.1f %s x%d (%.1fx)", ad4_batch_ns,
                scidock::simd::backend_name(), W, ad4_batch_speedup));
  gate(ad4_batch_speedup >= simd_threshold,
       scidock::simd::wide_backend()
           ? "batched AD4 pair term must be >= 2x the scalar LUT path"
           : "batched AD4 pair term must not regress vs the scalar LUT path");

  const dock::VinaWeights vina_w;
  const auto vina_tables = dock::VinaPairTables::shared(vina_w);
  const double vina_analytic_ns = ns_per_eval(samples.size(), [&] {
    double acc = 0.0;
    for (const PairSample& s : samples) {
      acc += dock::vina_pair_energy(s.ti, s.tj, std::sqrt(s.r2), vina_w);
    }
    benchmark::DoNotOptimize(acc);
  });
  const double vina_lut_ns = ns_per_eval(samples.size(), [&] {
    double acc = 0.0;
    for (const PairSample& s : samples) {
      acc += vina_tables->pair_energy(s.ti, s.tj, s.r2);
    }
    benchmark::DoNotOptimize(acc);
  });
  bench::print_compare(
      "Vina pair kernel ns/eval", strformat("%.1f analytic", vina_analytic_ns),
      strformat("%.1f LUT (%.1fx)", vina_lut_ns,
                vina_analytic_ns / vina_lut_ns));

  // ---- fused trilinear sampling vs three separate samples ---------
  const DockFixture& fx = DockFixture::get();
  const dock::GridMapCalculator fx_calc(fx.receptor.molecule);
  mol::Molecule fx_lig = fx.ligand.molecule;
  fx_lig.perceive();
  const dock::GridMapSet fused_maps =
      fx_calc.calculate(fx.box, fx_lig.ad_types_present());
  const dock::GridMap& m0 = fused_maps.affinity[0].second;
  std::vector<mol::Vec3> points;
  {
    Rng rng(23);
    const mol::Aabb b = fx.box.bounds();
    for (int i = 0; i < 2048; ++i) {
      points.push_back({rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y),
                        rng.uniform(b.lo.z, b.hi.z)});
    }
  }
  const std::size_t npts = points.size();  // 2048: a lane multiple
  util::aligned_vector<double> pxs(npts), pys(npts), pzs(npts);
  for (std::size_t i = 0; i < npts; ++i) {
    pxs[i] = points[i].x;
    pys[i] = points[i].y;
    pzs[i] = points[i].z;
  }
  // Separate vs fused vs batched sampling, interleaved for the ratio
  // gates (same reasoning as the AD4 trio above).
  const std::vector<double> sample3_ns = interleaved_ns_per_eval(
      points.size(),
      {[&] {
         double acc = 0.0;
         for (const mol::Vec3& p : points) {
           acc += m0.sample(p) + fused_maps.electrostatic.sample(p) +
                  fused_maps.desolvation.sample(p);
         }
         benchmark::DoNotOptimize(acc);
       },
       [&] {
         double acc = 0.0;
         for (const mol::Vec3& p : points) {
           const dock::TrilinearSampler s(fx.box, p);
           if (s.in_box()) {
             acc += s.apply(m0) + s.apply(fused_maps.electrostatic) +
                    s.apply(fused_maps.desolvation);
           }
         }
         benchmark::DoNotOptimize(acc);
       },
       [&] {
         scidock::simd::f64x acc;
         for (std::size_t i = 0; i < npts; i += W) {
           const dock::TrilinearSamplerLanes s(fx.box, pxs.data() + i,
                                               pys.data() + i, pzs.data() + i);
           acc += s.apply(m0) + s.apply(fused_maps.electrostatic) +
                  s.apply(fused_maps.desolvation);
         }
         benchmark::DoNotOptimize(acc.hsum());
       }});
  const double unfused_ns = sample3_ns[0];
  const double fused_ns = sample3_ns[1];
  const double sample3_batch_ns = sample3_ns[2];
  bench::print_compare("3-map sampling ns/point",
                       strformat("%.1f separate", unfused_ns),
                       strformat("%.1f fused (%.1fx)", fused_ns,
                                 unfused_ns / fused_ns));

  // ---- batched trilinear sampling vs the fused scalar sampler -----
  const double sample3_batch_speedup = fused_ns / sample3_batch_ns;
  bench::print_compare(
      "3-map batched ns/point", strformat("%.1f fused scalar", fused_ns),
      strformat("%.1f %s x%d (%.1fx)", sample3_batch_ns,
                scidock::simd::backend_name(), W, sample3_batch_speedup));
  gate(sample3_batch_speedup >= simd_threshold,
       scidock::simd::wide_backend()
           ? "batched trilinear sampling must be >= 2x the fused scalar path"
           : "batched trilinear sampling must not regress vs fused scalar");

  // ---- AutoGrid: serial vs 8-thread z-slab fan-out ----------------
  const auto time_autogrid = [&](ThreadPool* pool) {
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      benchmark::DoNotOptimize(
          fx_calc.calculate(fx.box, dock::screening_ligand_types(), pool));
      best = std::min(
          best, std::chrono::duration<double>(clock::now() - t0).count());
    }
    return best;
  };
  const double autogrid_serial_s = time_autogrid(nullptr);
  ThreadPool pool8(8);
  const double autogrid_8t_s = time_autogrid(&pool8);
  bench::print_compare(
      "AutoGrid map set (19 types)",
      strformat("%.0f ms serial", autogrid_serial_s * 1e3),
      strformat("%.0f ms @ 8 threads (%.1fx)", autogrid_8t_s * 1e3,
                autogrid_serial_s / autogrid_8t_s));
  // The z-slab fan-out can only show a wall-clock win on real cores.
  if (std::thread::hardware_concurrency() > 1) {
    gate(autogrid_8t_s <= 0.7 * autogrid_serial_s,
         "8-thread AutoGrid must be >= 30% faster than serial");
  } else {
    std::printf("(parallel AutoGrid gate skipped: single-core machine)\n");
  }

  // ---- pipeline A/B: grid-map reuse off vs on ---------------------
  // Small structures so the default 10 x 42 campaign stays quick; the
  // reuse machinery (canonical GPF -> single-flight cache) is identical.
  core::ScidockOptions popts;
  popts.dataset.min_residues = 12;
  popts.dataset.max_residues = 30;
  popts.dataset.min_ligand_atoms = 8;
  popts.dataset.max_ligand_atoms = 14;
  popts.dataset.hg_fraction = 0.0;
  popts.ad4_params = {.ga_runs = 1, .ga_pop_size = 10, .ga_num_evals = 300,
                      .ga_num_generations = 10, .sw_max_its = 15};
  popts.vina_exhaustiveness = 1;
  popts.vina_steps_per_chain = 8;
  popts.grid_spacing = 0.8;  // coarser maps keep the reuse-off run quick
  const auto& all_receptors = data::table2_receptors();
  const auto& all_ligands = data::table2_ligands();
  const auto n_receptors = static_cast<std::size_t>(std::min(
      env_int("SCIDOCK_KERNEL_RECEPTORS", 10),
      static_cast<int>(all_receptors.size())));
  const auto n_ligands = static_cast<std::size_t>(
      std::min(env_int("SCIDOCK_KERNEL_LIGANDS", 42),
               static_cast<int>(all_ligands.size())));
  const std::vector<std::string> receptors(
      all_receptors.begin(),
      all_receptors.begin() + static_cast<std::ptrdiff_t>(n_receptors));
  const std::vector<std::string> ligands(
      all_ligands.begin(),
      all_ligands.begin() + static_cast<std::ptrdiff_t>(n_ligands));
  const int threads = 8;

  // One executor round, replicating core::run_native but keeping the
  // executor options so the chaos checker can reconcile the run.
  const auto run = [&](bool reuse, obs::Observability obs,
                       wf::NativeExecutorOptions* xopts_out,
                       std::size_t* input_tuples) {
    core::ScidockOptions o = popts;
    o.reuse_grid_maps = reuse;
    auto exp = core::make_experiment(receptors, ligands, 0, o);
    *input_tuples = exp.pairs.size();
    wf::NativeExecutorOptions xopts;
    xopts.threads = threads;
    xopts.expdir = o.expdir;
    xopts.obs = obs;
    exp.prov->set_metrics(obs.metrics);
    wf::NativeExecutor executor(exp.pipeline, *exp.fs, *exp.prov, xopts);
    wf::NativeReport report = executor.run(exp.pairs, "kernel-bench");
    exp.prov->set_metrics(nullptr);
    *xopts_out = xopts;
    if (obs.metrics != nullptr) {
      chaos::InvariantChecker checker;
      const chaos::RunSummary summary =
          chaos::summarize(report, xopts, *input_tuples);
      checker.check_metrics(summary, *obs.metrics, *exp.prov, "kernel-bench");
      if (!checker.ok()) {
        std::printf("%s\n", checker.to_string().c_str());
      }
      return std::make_pair(report, checker.ok());
    }
    return std::make_pair(report, true);
  };

  wf::NativeExecutorOptions xopts;
  std::size_t input_tuples = 0;
  const auto [off_report, off_ok] =
      run(false, obs::Observability{}, &xopts, &input_tuples);
  (void)off_ok;  // no metrics attached on the baseline run
  obs::MetricsRegistry metrics;
  const auto [on_report, reconciled] = run(
      true, obs::Observability{nullptr, &metrics}, &xopts, &input_tuples);
  const double stage_off =
      off_report.per_activity_seconds.at(core::kAutogrid).sum();
  const double stage_on =
      on_report.per_activity_seconds.at(core::kAutogrid).sum();
  const long long hits = metrics.counter_value(obs::kCacheGridmapsHits);
  const long long misses = metrics.counter_value(obs::kCacheGridmapsMisses);
  const long long waits =
      metrics.counter_value(obs::kCacheGridmapsInflightWaits);
  const long long outcomes = hits + misses + waits;
  const double hit_rate =
      outcomes > 0
          ? 100.0 * static_cast<double>(hits + waits) /
                static_cast<double>(outcomes)
          : 0.0;
  const double reduction_pct = 100.0 * (1.0 - stage_on / stage_off);
  std::printf("\npipeline A/B: %zu pairs, %d threads\n", input_tuples,
              threads);
  bench::print_compare("AutoGrid stage seconds (sum)",
                       strformat("%.2f reuse off", stage_off),
                       strformat("%.2f reuse on (-%.0f%%)", stage_on,
                                 reduction_pct));
  bench::print_compare(
      "grid-map cache", strformat("%lld outcomes", outcomes),
      strformat("%lld hit / %lld miss / %lld wait (%.1f%% hit rate)", hits,
                misses, waits, hit_rate));
  gate(reduction_pct >= 30.0,
       "grid-map reuse must cut the AutoGrid stage by >= 30%");
  gate(outcomes > 0 && misses == static_cast<long long>(receptors.size()),
       "exactly one grid-map compute per receptor");
  gate(reconciled, "cache counters must reconcile with PROV-Wf");
  // The hit-rate threshold is what this workload actually attains when
  // every pair past the first per receptor is served from cache: hits =
  // pairs - receptors. Deriving it from the run's own counts keeps the
  // gate meaningful at smoke scale (a hard-coded 95% is unreachable when
  // pairs is small) and *tighter* at campaign scale.
  const double expected_hit_rate =
      input_tuples > 0
          ? 100.0 * (1.0 - static_cast<double>(receptors.size()) /
                               static_cast<double>(input_tuples))
          : 0.0;
  std::printf("(hit-rate threshold from workload counts: %zu pairs - %zu "
              "receptors => %.1f%%)\n",
              input_tuples, receptors.size(), expected_hit_rate);
  gate(hit_rate >= expected_hit_rate - 1e-6,
       "cache hit rate must reach (pairs - receptors) / pairs");

  const std::string path = bench::write_bench_json(
      "kernels",
      {{"simd_backend",
        std::string("\"") + scidock::simd::backend_name() + "\""},
       {"simd_lane_width", strformat("%d", W)},
       {"ad4_pair_ns_analytic", strformat("%.2f", ad4_analytic_ns)},
       {"ad4_pair_ns_lut", strformat("%.2f", ad4_lut_ns)},
       {"ad4_pair_speedup", strformat("%.2f", ad4_speedup)},
       {"ad4_pair_ns_batch", strformat("%.2f", ad4_batch_ns)},
       {"ad4_pair_batch_speedup", strformat("%.2f", ad4_batch_speedup)},
       {"vina_pair_ns_analytic", strformat("%.2f", vina_analytic_ns)},
       {"vina_pair_ns_lut", strformat("%.2f", vina_lut_ns)},
       {"sample3_ns_separate", strformat("%.2f", unfused_ns)},
       {"sample3_ns_fused", strformat("%.2f", fused_ns)},
       {"sample3_ns_batch", strformat("%.2f", sample3_batch_ns)},
       {"sample3_batch_speedup", strformat("%.2f", sample3_batch_speedup)},
       {"autogrid_ms_serial", strformat("%.2f", autogrid_serial_s * 1e3)},
       {"autogrid_ms_8t", strformat("%.2f", autogrid_8t_s * 1e3)},
       {"autogrid_parallel_speedup",
        strformat("%.2f", autogrid_serial_s / autogrid_8t_s)},
       {"pipeline_pairs", strformat("%zu", input_tuples)},
       {"pipeline_autogrid_s_reuse_off", strformat("%.3f", stage_off)},
       {"pipeline_autogrid_s_reuse_on", strformat("%.3f", stage_on)},
       {"autogrid_stage_reduction_pct", strformat("%.1f", reduction_pct)},
       {"cache_hits", strformat("%lld", hits)},
       {"cache_misses", strformat("%lld", misses)},
       {"cache_inflight_waits", strformat("%lld", waits)},
       {"cache_hit_rate_pct", strformat("%.2f", hit_rate)},
       {"cache_hit_rate_expected_pct", strformat("%.2f", expected_hit_rate)}});
  if (path.empty()) {
    std::printf("GATE FAILED: could not write BENCH_kernels.json\n");
    ++failures;
  } else {
    std::printf("\nwrote %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_kernel_report();
}
