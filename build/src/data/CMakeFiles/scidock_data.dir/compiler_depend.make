# Empty compiler generated dependencies file for scidock_data.
# This may be replaced when dependencies are built.
