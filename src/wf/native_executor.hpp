#pragma once

/// \file native_executor.hpp
/// The native executor really runs the activity implementations (real
/// parsing, grid math, docking) on a thread pool whose size plays the
/// role of "virtual cores". Used for tests, examples and the docking-
/// quality experiments (Table 3), where the *results* matter rather than
/// cloud-scale timing.

#include <functional>
#include <map>
#include <string>

#include "obs/obs.hpp"
#include "prov/prov.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "vfs/vfs.hpp"
#include "wf/pipeline.hpp"

namespace scidock::wf {

/// Progress event for runtime steering (paper SS IV.B: "SciCumulus allows
/// for runtime provenance query ... it allows for user steering and
/// anticipating results"). Fired after every activation attempt; the
/// provenance store is already up to date when the callback runs, so the
/// monitor can issue SQL against it mid-execution.
struct ActivationEvent {
  std::string activity_tag;
  std::string pair;        ///< the tuple's workload identifier, if any
  bool success = true;
  int attempt = 1;
  double seconds = 0.0;
};
using MonitorFn = std::function<void(const ActivationEvent&)>;

/// Verdict of a fault injector for one activation attempt, mirroring
/// cloud::ActivationOutcome: Failure crashes the attempt (status FAILED),
/// Hang models the looping state killed by the watchdog (status ABORTED).
/// Both burn one attempt from the re-execution budget.
enum class InjectedFault { None, Failure, Hang };

/// Decides, per activation attempt, whether the chaos layer makes it
/// fail. Must be deterministic in (tag, tuple, attempt) and thread-safe:
/// it is called concurrently and replays must reproduce the run.
using FaultInjectorFn = std::function<InjectedFault(
    const std::string& activity_tag, const Tuple& tuple, int attempt)>;

struct NativeExecutorOptions {
  int threads = 1;
  int max_attempts = 3;      ///< per-stage re-execution budget
  std::string expdir = "/root/exp_scidock/";
  std::uint64_t seed = 42;
  /// Optional steering monitor; invoked from worker threads (must be
  /// thread-safe). Exceptions from the monitor are swallowed.
  MonitorFn monitor;
  /// Chaos hooks: per-attempt fault verdicts, and a hook installed on the
  /// internal thread pool (scheduling-delay injection). Both optional.
  FaultInjectorFn fault_injector;
  ThreadPool::TaskHook pool_task_hook;
  /// Optional tracing/metrics sinks (see obs/obs.hpp). When set, the run
  /// emits one real-time span per activation attempt plus the executor
  /// counter series reconciled against PROV-Wf by the chaos checker.
  obs::Observability obs;
};

struct NativeReport {
  Relation output;                     ///< tuples that completed the chain
  double wall_seconds = 0.0;
  long long activations_finished = 0;
  long long activations_failed = 0;    ///< failed attempts (re-executed)
  long long activations_hung = 0;      ///< injected hangs aborted by watchdog
  long long tuples_lost = 0;           ///< exhausted their attempt budget
  std::map<std::string, RunningStats> per_activity_seconds;
  std::vector<std::string> failure_messages;  ///< first error per lost tuple
};

class NativeExecutor {
 public:
  NativeExecutor(const Pipeline& pipeline, vfs::SharedFileSystem& fs,
                 prov::ProvenanceStore& prov, NativeExecutorOptions options);

  /// Run every input tuple through its chain; tuples execute concurrently
  /// on the thread pool, each chain sequentially.
  NativeReport run(const Relation& input, const std::string& workflow_tag);

 private:
  const Pipeline& pipeline_;
  vfs::SharedFileSystem& fs_;
  prov::ProvenanceStore& prov_;
  NativeExecutorOptions options_;
};

}  // namespace scidock::wf
