#include "sql/ast.hpp"

#include "util/strings.hpp"

namespace scidock::sql {

ExprPtr Expr::make_literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Literal;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::make_column(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Column;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Binary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::make_unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Unary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::make_call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Call;
  e->call_name = to_lower(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::make_star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Star;
  return e;
}

ExprPtr Expr::make_in(ExprPtr probe, std::vector<ExprPtr> list, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::In;
  e->lhs = std::move(probe);
  e->args = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr Expr::make_between(ExprPtr value, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Between;
  e->lhs = std::move(value);
  e->args.push_back(std::move(lo));
  e->args.push_back(std::move(hi));
  e->negated = negated;
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  e->call_name = call_name;
  for (const ExprPtr& a : args) e->args.push_back(a->clone());
  e->star_arg = star_arg;
  e->negated = negated;
  return e;
}

namespace {
const char* binary_op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Eq: return "=";
    case BinaryOp::Ne: return "<>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::And: return "AND";
    case BinaryOp::Or: return "OR";
    case BinaryOp::Like: return "LIKE";
    case BinaryOp::Concat: return "||";
  }
  return "?";
}
}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::Literal:
      return literal.is_string() ? "'" + literal.to_string() + "'" : literal.to_string();
    case Kind::Column:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::Binary:
      return "(" + lhs->to_string() + " " + binary_op_text(binary_op) + " " +
             rhs->to_string() + ")";
    case Kind::Unary:
      switch (unary_op) {
        case UnaryOp::Neg: return "(-" + lhs->to_string() + ")";
        case UnaryOp::Not: return "(NOT " + lhs->to_string() + ")";
        case UnaryOp::IsNull: return "(" + lhs->to_string() + " IS NULL)";
        case UnaryOp::IsNotNull: return "(" + lhs->to_string() + " IS NOT NULL)";
      }
      return "?";
    case Kind::Call: {
      std::string out = call_name + "(";
      if (star_arg) out += "*";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Star:
      return "*";
    case Kind::In: {
      std::string out = lhs->to_string() + (negated ? " NOT IN (" : " IN (");
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::Between:
      return lhs->to_string() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[0]->to_string() + " AND " + args[1]->to_string();
  }
  return "?";
}

bool contains_aggregate(const Expr& e) {
  if (e.kind == Expr::Kind::Call) {
    const std::string& n = e.call_name;
    if (n == "min" || n == "max" || n == "sum" || n == "avg" || n == "count") {
      return true;
    }
  }
  if (e.lhs && contains_aggregate(*e.lhs)) return true;
  if (e.rhs && contains_aggregate(*e.rhs)) return true;
  for (const ExprPtr& a : e.args) {
    if (contains_aggregate(*a)) return true;
  }
  return false;
}

}  // namespace scidock::sql
