#pragma once

/// \file energy_lut.hpp
/// Radial energy lookup tables for the docking hot path (DESIGN.md §10).
///
/// Real AutoGrid/AutoDock precompute pairwise-energy tables once per run
/// instead of calling `exp`/`pow`/`sqrt` per atom pair per evaluation.
/// This module does the same: every scoring term that depends only on the
/// pair of AutoDock types and the distance is tabulated over *squared*
/// distance — callers feed `distance_sq` straight from the neighbour list
/// or the intramolecular pair loop and never pay the `sqrt`.
///
/// Tables are uniform in r² on [0, cutoff²] with linear interpolation
/// (kEntries bins, kEntries + 1 samples). Charge-dependent factors cannot
/// be tabulated per pair (charges vary per atom), so the electrostatic and
/// desolvation channels store the type-independent radial part and the
/// caller multiplies its precomputed charge/solvation factors in.
///
/// Accuracy: with 4096 bins over 64 Å² the interpolation error against the
/// analytic path stays below 2e-3 kcal/mol absolute outside the clamped
/// repulsive wall and below 0.5% relative inside the wells — an order of
/// magnitude under the energy differences the GA/MC search acts on. The
/// kernel-equivalence suite (`ctest -L kernels`) enforces this bound.
///
/// Table sets are immutable after construction and shared process-wide by
/// weight vector (`shared()`), so per-activation model construction costs
/// one mutex-guarded lookup instead of a rebuild.

#include <memory>
#include <vector>

#include "dock/scoring.hpp"
#include "mol/atom_typing.hpp"

namespace scidock::dock {

namespace lut {

/// Table resolution shared by the AD4 and Vina sets. The domain ends at
/// the 8 Å interaction cutoff both engines use; beyond it the AD4 path
/// falls back to the analytic tail and the Vina path is identically zero.
inline constexpr double kCutoff = 8.0;
inline constexpr double kCutoffSq = kCutoff * kCutoff;
inline constexpr int kEntries = 4096;

/// Linear interpolation into one channel of kEntries + 1 samples uniform
/// in r². `r2` must lie in [0, kCutoffSq].
inline double interpolate(const double* samples, double r2) {
  constexpr double kInvStep = kEntries / kCutoffSq;
  const double x = r2 * kInvStep;
  int i = static_cast<int>(x);
  if (i >= kEntries) i = kEntries - 1;  // r2 == kCutoffSq lands here
  const double t = x - static_cast<double>(i);
  return samples[i] + (samples[i + 1] - samples[i]) * t;
}

/// Triangular index of the unordered type pair (ti, tj) into a flat array
/// of kAdTypeCount * (kAdTypeCount + 1) / 2 per-pair channels.
inline int pair_index(mol::AdType ti, mol::AdType tj) {
  int lo = static_cast<int>(ti);
  int hi = static_cast<int>(tj);
  if (lo > hi) {
    const int tmp = lo;
    lo = hi;
    hi = tmp;
  }
  return lo * mol::kAdTypeCount - lo * (lo + 1) / 2 + hi;
}

inline constexpr int kPairCount =
    mol::kAdTypeCount * (mol::kAdTypeCount + 1) / 2;

}  // namespace lut

/// AD4 radial tables: one weighted vdW/H-bond channel per unordered type
/// pair plus the shared screened-Coulomb and desolvation-Gaussian
/// channels. All channels apply the kMinDistance = 0.5 Å clamp exactly
/// like the analytic path, so the sub-clamp region is constant.
class Ad4PairTables {
 public:
  explicit Ad4PairTables(const Ad4Weights& weights);

  /// Process-wide shared instance for a weight vector (built on first
  /// use, then reused by every energy model / grid calculator).
  static std::shared_ptr<const Ad4PairTables> shared(const Ad4Weights& weights);

  const Ad4Weights& weights() const { return weights_; }
  static constexpr double cutoff_sq() { return lut::kCutoffSq; }

  /// Weighted, clamped 12-6 / 12-10 well: ad4_vdw_hbond(ti, tj, sqrt(r2)).
  double vdw_hbond(mol::AdType ti, mol::AdType tj, double r2) const {
    return lut::interpolate(vdw_row(ti, tj), r2);
  }

  /// Base pointer of one pair's vdW/H-bond channel — hoist out of inner
  /// loops that evaluate many distances for a fixed type pair (AutoGrid).
  const double* vdw_row(mol::AdType ti, mol::AdType tj) const {
    return vdw_.data() +
           static_cast<std::size_t>(lut::pair_index(ti, tj)) *
               (lut::kEntries + 1);
  }

  /// w_estat * 332.06 / (eps(r) * r); multiply by q_i * q_j (or by the
  /// receptor charge for the unit-charge electrostatic map).
  double coulomb_factor(double r2) const {
    return lut::interpolate(coulomb_.data(), r2);
  }

  /// w_desolv * exp(-r² / (2 σ²)); multiply by the solvation cross terms.
  double desolv_gauss(double r2) const {
    return lut::interpolate(gauss_.data(), r2);
  }

  /// Drop-in for ad4_pair_energy(ti, qi, tj, qj, sqrt(r2), weights):
  /// table path inside the cutoff, analytic tail beyond it.
  double pair_energy(mol::AdType ti, double qi, mol::AdType tj, double qj,
                     double r2) const;

 private:
  Ad4Weights weights_;
  std::vector<double> vdw_;      ///< kPairCount channels
  std::vector<double> coulomb_;  ///< one shared channel
  std::vector<double> gauss_;    ///< one shared channel
};

/// Vina radial tables: the full pairwise term (gauss1/gauss2/repulsion/
/// hydrophobic/h-bond on the surface distance) is charge-free, so one
/// channel per unordered type pair tabulates it completely. Zero beyond
/// the 8 Å cutoff by construction, matching the analytic truncation.
class VinaPairTables {
 public:
  explicit VinaPairTables(const VinaWeights& weights);

  static std::shared_ptr<const VinaPairTables> shared(
      const VinaWeights& weights);

  const VinaWeights& weights() const { return weights_; }
  static constexpr double cutoff_sq() { return lut::kCutoffSq; }

  /// vina_pair_energy(ti, tj, sqrt(r2)); r2 past the cutoff returns 0.
  double pair_energy(mol::AdType ti, mol::AdType tj, double r2) const {
    if (r2 >= lut::kCutoffSq) return 0.0;
    return lut::interpolate(
        pair_.data() + static_cast<std::size_t>(lut::pair_index(ti, tj)) *
                           (lut::kEntries + 1),
        r2);
  }

 private:
  VinaWeights weights_;
  std::vector<double> pair_;  ///< kPairCount channels
};

}  // namespace scidock::dock
