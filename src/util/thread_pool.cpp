#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace scidock {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::set_task_hook(TaskHook hook) {
  MutexLock lock(mutex_);
  task_hook_ = std::move(hook);
}

void ThreadPool::set_stats_hook(StatsHook hook) {
  MutexLock lock(mutex_);
  stats_hook_ = std::move(hook);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  // Lockdep: tasks run below can tell they execute inside this pool, so
  // blocking on work queued into it (nested parallel_for, single-flight
  // waits) is reportable as a self-wait hazard.
  lockdep::PoolWorkerScope worker_scope(this);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

#if SCIDOCK_LOCKDEP_ENABLED
void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, std::source_location site) {
  if (n > 0) lockdep::on_pool_wait(this, site);
#else
void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
#endif
  grain = std::max<std::size_t>(grain, 1);
  std::vector<std::future<void>> futures;
  std::vector<racer::TaskEdge> edges;
  futures.reserve((n + grain - 1) / grain);
  edges.reserve(futures.capacity());
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(begin + grain, n);
    edges.push_back(racer::on_task_spawn());
    futures.push_back(submit_with_edge(
        [&fn, begin, end] {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        },
        edges.back()));
  }
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      futures[i].get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    // The chunk's writes happen-before everything after this join — the
    // edge that makes the caller's post-loop reads race-free.
    racer::on_task_join(edges[i]);
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace scidock
