#include "mol/prepare.hpp"

#include "mol/charges.hpp"
#include "util/error.hpp"

namespace scidock::mol {

namespace {

/// Remove crystallographic waters (HOH/WAT residues), which MGLTools'
/// receptor preparation strips by default.
Molecule strip_waters(const Molecule& in) {
  Molecule out{in.name()};
  std::vector<int> index_map(static_cast<std::size_t>(in.atom_count()), -1);
  for (int i = 0; i < in.atom_count(); ++i) {
    const Atom& a = in.atom(i);
    if (a.residue_name == "HOH" || a.residue_name == "WAT") continue;
    index_map[static_cast<std::size_t>(i)] = out.add_atom(a);
  }
  for (const Bond& b : in.bonds()) {
    const int na = index_map[static_cast<std::size_t>(b.a)];
    const int nb = index_map[static_cast<std::size_t>(b.b)];
    if (na >= 0 && nb >= 0) out.add_bond(na, nb, b.order);
  }
  return out;
}

}  // namespace

PreparedLigand prepare_ligand(Molecule ligand) {
  SCIDOCK_REQUIRE(ligand.atom_count() > 0, "empty ligand");
  ligand.perceive();
  if (!ligand.fully_parameterised()) {
    throw ActivityError("prepare_ligand: ligand '" + ligand.name() +
                        "' contains atoms without force-field parameters");
  }
  assign_gasteiger_charges(ligand);
  TorsionTree tree = TorsionTree::build(ligand);
  std::string pdbqt = write_pdbqt_ligand(ligand, tree);
  return PreparedLigand{std::move(ligand), std::move(tree), std::move(pdbqt)};
}

PreparedReceptor prepare_receptor(Molecule receptor,
                                  const ReceptorPrepareOptions& opts) {
  SCIDOCK_REQUIRE(receptor.atom_count() > 0, "empty receptor");
  Molecule cleaned = strip_waters(receptor);
  SCIDOCK_REQUIRE(cleaned.atom_count() > 0, "receptor is all water");
  cleaned.perceive();
  if (opts.reject_unparameterised_atoms && !cleaned.fully_parameterised()) {
    throw ActivityError("prepare_receptor: receptor '" + cleaned.name() +
                        "' contains unparameterised atoms (e.g. Hg); the "
                        "real tools hang on these structures");
  }
  assign_gasteiger_charges(cleaned);
  std::string pdbqt = write_pdbqt_rigid(cleaned);
  return PreparedReceptor{std::move(cleaned), std::move(pdbqt)};
}

}  // namespace scidock::mol
