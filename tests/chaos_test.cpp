// Differential chaos sweep (ctest label: chaos): seed-deterministic fault
// injection through both executors and both scheduler policies, with every
// run validated by the InvariantChecker — conservation under the attempt
// budget, provenance/report consistency, and byte-identical same-seed
// replay. A negative control (re-execution disabled) proves the checker
// detects a broken fault-tolerance contract.
//
// Reproducing a failing CI seed: every assertion message carries the
// (seed, profile, policy/threads) triple; rebuild and run
//   ./scidock_chaos_tests --gtest_filter='ChaosSweep.*'
// after hard-coding that seed in the sweep bounds (see DESIGN.md).

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "chaos/invariants.hpp"
#include "cloud/cost_model.hpp"
#include "prov/prov.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "vfs/vfs.hpp"
#include "wf/native_executor.hpp"
#include "wf/pipeline.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::chaos {
namespace {

using wf::ActivationContext;
using wf::AlgebraicOp;
using wf::Pipeline;
using wf::Relation;
using wf::Stage;
using wf::Tuple;

constexpr int kSweepSeeds = 50;
constexpr int kAttemptBudget = 6;

Relation chaos_input(int n, int hazards = 0) {
  Relation rel{{"pair", "id", "hg"}};
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.set("pair", "pair-" + std::to_string(i));
    t.set("id", std::to_string(i));
    t.set("hg", i < hazards ? "1" : "0");
    rel.add(std::move(t));
  }
  return rel;
}

/// Two Map stages that really touch the shared filesystem under /chaos/,
/// so VFS fault injection lands inside the activation retry loop.
Pipeline chaos_pipeline() {
  Pipeline p;
  p.add_stage(Stage{
      "produce", AlgebraicOp::Map,
      [](const Tuple& in, ActivationContext& ctx) {
        const std::string& id = in.require("id");
        ctx.fs->write("/chaos/" + id + ".a", "a:" + id, ctx.now, "produce");
        Tuple out = in;
        out.set("a", std::to_string(3 * std::stoi(id)));
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  p.add_stage(Stage{
      "consume", AlgebraicOp::Map,
      [](const Tuple& in, ActivationContext& ctx) {
        const std::string& id = in.require("id");
        const std::string staged = ctx.fs->read("/chaos/" + id + ".a");
        ctx.fs->write("/chaos/" + id + ".b", staged + "|b", ctx.now, "consume");
        Tuple out = in;
        out.set("b", in.require("a") + "!");
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  return p;
}

cloud::CostModel chaos_cost_model() {
  cloud::CostModel model;
  model.set_cost({"produce", 12.0, 0.4, 0.5});
  model.set_cost({"consume", 6.0, 0.4, 0.5});
  return model;
}

ChaosProfile profile_for(int seed) {
  return seed % 2 == 0 ? chaos_profile_light() : chaos_profile_heavy();
}

// ------------------------------------------------------------ sim sweep

wf::SimExecutorOptions sim_options(const ChaosEngine& engine,
                                   const std::string& policy,
                                   std::uint64_t seed) {
  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(8);
  opts.scheduler_policy = policy;
  opts.failure = engine.failure_options(kAttemptBudget, /*hang_timeout_s=*/300.0);
  opts.seed = seed;
  return opts;
}

TEST(ChaosSweep, SimulatedExecutorHoldsInvariants) {
  const Pipeline p = chaos_pipeline();
  const cloud::CostModel model = chaos_cost_model();
  const Relation input = chaos_input(30);
  long long faults_seen = 0;
  for (int seed = 0; seed < kSweepSeeds; ++seed) {
    for (const std::string policy : {"greedy-cost", "fifo"}) {
      const ChaosEngine engine(profile_for(seed), static_cast<std::uint64_t>(seed));
      const wf::SimExecutorOptions opts =
          sim_options(engine, policy, static_cast<std::uint64_t>(seed));
      const std::string tag = "chaos-sim";

      prov::ProvenanceStore store_a, store_b;
      const wf::SimReport a =
          wf::SimulatedExecutor(p, model, opts).run(input, &store_a, tag);
      const wf::SimReport b =
          wf::SimulatedExecutor(p, model, opts).run(input, &store_b, tag);

      const RunSummary sa = summarize(a, opts, input.size());
      const RunSummary sb = summarize(b, opts, input.size());
      InvariantChecker checker;
      checker.check_conservation(sa);
      checker.check_provenance(sa, store_a, tag, /*chain_length=*/2);
      checker.check_replay(sa, sb);
      checker.check_lockdep();
      checker.check_racer();
      ASSERT_TRUE(checker.ok())
          << "seed=" << seed << " profile=" << engine.profile().name
          << " policy=" << policy << "\n" << checker.to_string();
      faults_seen += a.activations_failed + a.activations_hung;
    }
  }
  // The sweep is only meaningful if chaos actually fired.
  EXPECT_GT(faults_seen, 100);
}

// --------------------------------------------------------- native sweep

TEST(ChaosSweep, NativeExecutorHoldsInvariants) {
  const Pipeline p = chaos_pipeline();
  const Relation input = chaos_input(10);
  long long faults_seen = 0;
  for (int seed = 0; seed < kSweepSeeds; ++seed) {
    ChaosProfile profile = profile_for(seed);
    profile.vfs.path_substring = "/chaos/";
    profile.pool.exception_probability = 0.0;  // delays only: a pool
    // exception aborts the whole run instead of one activation, which is
    // exercised separately below.
    const std::string tag = "chaos-native";
    const int threads = 1 + seed % 4;

    auto run_once = [&](prov::ProvenanceStore& store,
                        const ChaosEngine& engine) {
      vfs::SharedFileSystem fs;
      fs.set_fault_hook(engine.vfs_hook());
      wf::NativeExecutorOptions opts;
      opts.threads = threads;
      opts.max_attempts = kAttemptBudget;
      opts.seed = static_cast<std::uint64_t>(seed);
      opts.fault_injector = engine.activity_fault_injector();
      opts.pool_task_hook = engine.pool_hook();
      wf::NativeExecutor exec(p, fs, store, opts);
      return std::pair{exec.run(input, tag), opts};
    };

    // A fresh engine per run: transient-fault bookkeeping starts over, so
    // the same seed must reproduce the same injected faults.
    prov::ProvenanceStore store_a, store_b;
    const ChaosEngine engine_a(profile, static_cast<std::uint64_t>(seed));
    const ChaosEngine engine_b(profile, static_cast<std::uint64_t>(seed));
    const auto [a, opts_a] = run_once(store_a, engine_a);
    const auto [b, opts_b] = run_once(store_b, engine_b);

    const RunSummary sa = summarize(a, opts_a, input.size());
    const RunSummary sb = summarize(b, opts_b, input.size());
    InvariantChecker checker;
    checker.check_conservation(sa);
    checker.check_provenance(sa, store_a, tag, /*chain_length=*/2);
    checker.check_replay(sa, sb);
    checker.check_lockdep();
    checker.check_racer();
    ASSERT_TRUE(checker.ok())
        << "seed=" << seed << " profile=" << profile.name
        << " threads=" << threads << "\n" << checker.to_string();
    faults_seen += a.activations_failed + a.activations_hung;
    EXPECT_EQ(engine_a.vfs_faults_injected(), engine_b.vfs_faults_injected())
        << "seed=" << seed;
  }
  EXPECT_GT(faults_seen, 50);
}

// ------------------------------------------------------ negative controls

TEST(ChaosNegativeControl, DisabledReexecutionIsFlagged) {
  const Pipeline p = chaos_pipeline();
  const ChaosEngine engine(chaos_profile_heavy(), 7);
  wf::SimExecutorOptions opts = sim_options(engine, "greedy-cost", 7);
  opts.reexecute_failures = false;  // deliberately break the contract
  prov::ProvenanceStore store;
  const wf::SimReport report = wf::SimulatedExecutor(p, chaos_cost_model(), opts)
                                   .run(chaos_input(40), &store, "broken");
  ASSERT_GT(report.tuples_lost, 0);
  const RunSummary s = summarize(report, opts, 40);
  InvariantChecker checker;
  EXPECT_FALSE(checker.check_conservation(s));
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations()[0].find("headroom"), std::string::npos);
}

TEST(ChaosNegativeControl, TamperedProvenanceIsFlagged) {
  const Pipeline p = chaos_pipeline();
  const ChaosEngine engine(chaos_profile_light(), 11);
  const wf::SimExecutorOptions opts = sim_options(engine, "greedy-cost", 11);
  prov::ProvenanceStore store;
  const wf::SimReport report = wf::SimulatedExecutor(p, chaos_cost_model(), opts)
                                   .run(chaos_input(20), &store, "tamper");
  const RunSummary s = summarize(report, opts, 20);
  InvariantChecker before;
  ASSERT_TRUE(before.check_provenance(s, store, "tamper", 2))
      << before.to_string();
  // Drop one FINISHED record: report counters no longer match the store.
  bool dropped = false;
  store.with_database([&](sql::Database& db) {
    sql::Table& t = db.table("hactivation");
    const auto c_status = static_cast<std::size_t>(t.column_index("status"));
    t.erase_if([&](const sql::Row& row) {
      if (dropped || row[c_status].as_string() != prov::kStatusFinished) {
        return false;
      }
      dropped = true;
      return true;
    });
  });
  ASSERT_TRUE(dropped);
  InvariantChecker after;
  EXPECT_FALSE(after.check_provenance(s, store, "tamper", 2));
}

// --------------------------------------------- seed-determinism regression

TEST(SeedDeterminism, IdenticalSimSeedsReproduceExactly) {
  const Pipeline p = chaos_pipeline();
  const ChaosEngine engine(chaos_profile_light(), 21);
  const wf::SimExecutorOptions opts = sim_options(engine, "greedy-cost", 21);
  const Relation input = chaos_input(25);
  const wf::SimReport a =
      wf::SimulatedExecutor(p, chaos_cost_model(), opts).run(input);
  const wf::SimReport b =
      wf::SimulatedExecutor(p, chaos_cost_model(), opts).run(input);
  EXPECT_DOUBLE_EQ(a.total_execution_time_s, b.total_execution_time_s);
  EXPECT_EQ(a.activations_finished, b.activations_finished);
  EXPECT_EQ(a.activations_failed, b.activations_failed);
  EXPECT_EQ(a.activations_hung, b.activations_hung);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].tag, b.records[i].tag) << i;
    EXPECT_EQ(a.records[i].tuple_index, b.records[i].tuple_index) << i;
    EXPECT_DOUBLE_EQ(a.records[i].start, b.records[i].start) << i;
    EXPECT_DOUBLE_EQ(a.records[i].end, b.records[i].end) << i;
    EXPECT_EQ(a.records[i].attempt, b.records[i].attempt) << i;
    EXPECT_EQ(a.records[i].status, b.records[i].status) << i;
  }
}

TEST(SeedDeterminism, DifferentSeedsDiverge) {
  const Pipeline p = chaos_pipeline();
  const Relation input = chaos_input(25);
  const ChaosEngine engine(chaos_profile_light(), 1);
  wf::SimExecutorOptions o1 = sim_options(engine, "greedy-cost", 1);
  wf::SimExecutorOptions o2 = sim_options(engine, "greedy-cost", 2);
  const wf::SimReport a =
      wf::SimulatedExecutor(p, chaos_cost_model(), o1).run(input);
  const wf::SimReport b =
      wf::SimulatedExecutor(p, chaos_cost_model(), o2).run(input);
  EXPECT_NE(summarize(a, o1, input.size()).digest,
            summarize(b, o2, input.size()).digest);
}

// ------------------------------------------------- hazards stay accounted

TEST(ChaosHazards, PreabortedHazardsAreExpectedLosses) {
  Pipeline p;
  p.add_stage(Stage{"produce", AlgebraicOp::Map, nullptr, nullptr, nullptr,
                    [](const Tuple& t) { return t.require("hg") == "1"; }});
  p.add_stage(Stage{"consume", AlgebraicOp::Map, nullptr, nullptr, nullptr,
                    nullptr});
  const ChaosEngine engine(chaos_profile_off(), 3);
  wf::SimExecutorOptions opts = sim_options(engine, "greedy-cost", 3);
  prov::ProvenanceStore store;
  const Relation input = chaos_input(20, /*hazards=*/2);
  const wf::SimReport report = wf::SimulatedExecutor(p, chaos_cost_model(), opts)
                                   .run(input, &store, "hazard");
  EXPECT_EQ(report.tuples_lost, 2);  // the two Hg tuples, pre-aborted
  RunSummary s = summarize(report, opts, input.size());
  InvariantChecker strict;
  EXPECT_FALSE(strict.check_conservation(s));  // losses look premature ...
  s.expected_hazard_losses = 2;                // ... until declared expected
  InvariantChecker informed;
  EXPECT_TRUE(informed.check_conservation(s)) << informed.to_string();
  EXPECT_TRUE(informed.check_provenance(s, store, "hazard", 2))
      << informed.to_string();
}

// -------------------------------------------------- chaos engine plumbing

TEST(ChaosEngine, ActivityVerdictsArePureAndSeedDependent) {
  const ChaosEngine a(chaos_profile_heavy(), 5);
  const ChaosEngine b(chaos_profile_heavy(), 5);
  const ChaosEngine c(chaos_profile_heavy(), 6);
  const auto fa = a.activity_fault_injector();
  const auto fb = b.activity_fault_injector();
  const auto fc = c.activity_fault_injector();
  Tuple t;
  t.set("pair", "pair-0");
  int diverged = 0;
  for (int attempt = 1; attempt <= 40; ++attempt) {
    EXPECT_EQ(static_cast<int>(fa("produce", t, attempt)),
              static_cast<int>(fb("produce", t, attempt)));
    if (fa("produce", t, attempt) != fc("produce", t, attempt)) ++diverged;
  }
  EXPECT_GT(diverged, 0);  // a different seed injects different faults
}

TEST(ChaosEngine, VfsTransientFaultsRecover) {
  ChaosProfile profile = chaos_profile_off();
  profile.vfs.read_fault_probability = 1.0;  // every path drawn faulty
  profile.vfs.max_transient_failures = 1;
  const ChaosEngine engine(profile, 9);
  vfs::SharedFileSystem fs;
  fs.set_fault_hook(engine.vfs_hook());
  fs.write("/x/data.txt", "payload");
  EXPECT_THROW(fs.read("/x/data.txt"), ActivityError);   // transient fault
  EXPECT_EQ(fs.read("/x/data.txt"), "payload");          // recovered
  EXPECT_EQ(engine.vfs_faults_injected(), 1);
}

TEST(ChaosEngine, PoolExceptionInjectionSurfacesThroughFutures) {
  ChaosProfile profile = chaos_profile_off();
  profile.pool.exception_probability = 1.0;
  const ChaosEngine engine(profile, 13);
  ThreadPool pool(2);
  pool.set_task_hook(engine.pool_hook());
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}), ChaosInjectedError);
  EXPECT_GT(engine.pool_exceptions_injected(), 0);
}

TEST(ChaosEngine, OffProfileInstallsNoHooks) {
  const ChaosEngine engine(chaos_profile_off(), 1);
  EXPECT_EQ(engine.vfs_hook(), nullptr);
  EXPECT_EQ(engine.pool_hook(), nullptr);
  EXPECT_EQ(engine.activity_fault_injector(), nullptr);
}

}  // namespace
}  // namespace scidock::chaos
