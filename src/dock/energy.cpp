#include "dock/energy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scidock::dock {

namespace {

mol::Vec3 root_center(const mol::PreparedLigand& ligand) {
  std::vector<mol::Vec3> pts;
  for (int i : ligand.torsions.root_atoms()) {
    pts.push_back(ligand.molecule.atom(i).pos);
  }
  if (pts.empty()) return ligand.molecule.center();
  return mol::centroid(pts);
}

}  // namespace

Ad4EnergyModel::Ad4EnergyModel(const GridMapSet& maps,
                               const mol::PreparedLigand& ligand,
                               Ad4Weights weights)
    : maps_(maps), ligand_(ligand), weights_(weights),
      tables_(Ad4PairTables::shared(weights)),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)) {
  // Fused sampling assumes every map shares the set's box; AutoGrid
  // guarantees this, and the map-file round trip preserves it.
  SCIDOCK_ASSERT(maps_.electrostatic.box().npts == maps_.box.npts &&
                 maps_.desolvation.box().npts == maps_.box.npts);
  constexpr double kQasp = 0.01097;
  channels_.reserve(static_cast<std::size_t>(ligand.molecule.atom_count()));
  for (int i = 0; i < ligand.molecule.atom_count(); ++i) {
    const mol::Atom& a = ligand.molecule.atom(i);
    const GridMap* aff = maps_.affinity_for(a.ad_type);
    // Every ligand type must have a map, otherwise the GPF was wrong.
    SCIDOCK_REQUIRE(aff != nullptr,
                    "missing AutoGrid map for ligand atom type " +
                        std::string(mol::ad_type_name(a.ad_type)));
    const auto& pa = mol::ad_type_params(a.ad_type);
    channels_.push_back({aff, a.partial_charge,
                         pa.solpar + kQasp * std::abs(a.partial_charge)});
  }
  for (const auto& [i, j] : intramolecular_pairs(ligand.molecule)) {
    const mol::Atom& ai = ligand.molecule.atom(i);
    const mol::Atom& aj = ligand.molecule.atom(j);
    const auto& pi = mol::ad_type_params(ai.ad_type);
    const auto& pj = mol::ad_type_params(aj.ad_type);
    const double qi = ai.partial_charge;
    const double qj = aj.partial_charge;
    intra_pairs_.push_back(
        {i, j, ai.ad_type, aj.ad_type, qi, qj, qi * qj,
         (pi.solpar + kQasp * std::abs(qi)) * pj.volume +
             (pj.solpar + kQasp * std::abs(qj)) * pi.volume});
  }
}

double Ad4EnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const std::size_t n = channels_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const AtomChannels& ch = channels_[i];
    // One cell/weight computation feeds all three maps (they share the
    // AutoGrid box), where the unfused path paid the origin/index math
    // three times per atom.
    const TrilinearSampler s(maps_.box, coords[i]);
    if (s.in_box()) {
      e += s.apply(*ch.affinity);
      e += ch.charge * s.apply(maps_.electrostatic);
      e += ch.solv * s.apply(maps_.desolvation);
    } else {
      e += GridMap::kOutOfBoxPenalty;
      e += ch.charge * GridMap::kOutOfBoxPenalty;
      e += ch.solv * GridMap::kOutOfBoxPenalty;
    }
  }
  return e;
}

double Ad4EnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const Ad4PairTables& t = *tables_;
  for (const IntraPair& p : intra_pairs_) {
    const double d2 = mol::distance_sq(coords[static_cast<std::size_t>(p.i)],
                                       coords[static_cast<std::size_t>(p.j)]);
    if (d2 < Ad4PairTables::cutoff_sq()) {
      e += t.vdw_hbond(p.ti, p.tj, d2) + p.qq * t.coulomb_factor(d2) +
           p.solv * t.desolv_gauss(d2);
    } else {
      // Intramolecular pairs in extended ligands exceed the table domain;
      // the analytic tail is cheap and already near zero out there.
      e += ad4_pair_energy(p.ti, p.qi, p.tj, p.qj, std::sqrt(d2), weights_);
    }
  }
  return e;
}

double Ad4EnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

double Ad4EnergyModel::feb(double inter) const {
  return inter + weights_.tors * static_cast<double>(ligand_.torsions.torsion_count());
}

std::vector<mol::Vec3> Ad4EnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

VinaEnergyModel::VinaEnergyModel(const mol::PreparedReceptor& receptor,
                                 const mol::PreparedLigand& ligand,
                                 const GridBox& box, VinaWeights weights)
    : receptor_(receptor), ligand_(ligand), box_(box), weights_(weights),
      tables_(VinaPairTables::shared(weights)),
      neighbors_(receptor.molecule, 8.0),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)) {
  for (const auto& [i, j] : intramolecular_pairs(ligand.molecule)) {
    if (mol::vina_kind(ligand.molecule.atom(i).ad_type).skip) continue;
    if (mol::vina_kind(ligand.molecule.atom(j).ad_type).skip) continue;
    intra_pairs_.emplace_back(i, j);
  }
}

double VinaEnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const VinaPairTables& t = *tables_;
  for (int i = 0; i < ligand_.molecule.atom_count(); ++i) {
    const mol::Atom& a = ligand_.molecule.atom(i);
    const mol::Vec3& p = coords[static_cast<std::size_t>(i)];
    // Vina confines the search to the box: out-of-box atoms incur a steep
    // harmonic pull-back, mirroring its boundary handling.
    if (!box_.contains(p)) {
      const mol::Vec3 c = box_.center;
      e += 10.0 * mol::distance_sq(p, c);
      continue;
    }
    neighbors_.for_each_within(p, [&](int ri, double d2) {
      // The neighbour list yields squared distances inside the cutoff;
      // the table is indexed by r², so no sqrt on the hot path.
      e += t.pair_energy(a.ad_type, receptor_.molecule.atom(ri).ad_type, d2);
    });
  }
  return e;
}

double VinaEnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const VinaPairTables& t = *tables_;
  for (const auto& [i, j] : intra_pairs_) {
    const double d2 = mol::distance_sq(coords[static_cast<std::size_t>(i)],
                                       coords[static_cast<std::size_t>(j)]);
    e += t.pair_energy(ligand_.molecule.atom(i).ad_type,
                       ligand_.molecule.atom(j).ad_type, d2);
  }
  return e;
}

double VinaEnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

double VinaEnergyModel::feb(double inter) const {
  return vina_affinity(inter, ligand_.torsions.torsion_count(), weights_);
}

std::vector<mol::Vec3> VinaEnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

}  // namespace scidock::dock
