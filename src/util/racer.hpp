#pragma once

/// \file racer.hpp
/// Deterministic happens-before race & determinism analyzer over the
/// annotated concurrency primitives, in the lineage of FastTrack/TSan:
/// every thread carries a vector clock, every synchronisation point we
/// already own advances it — named-Mutex release→acquire edges
/// (thread_annotations.hpp), ThreadPool task fork/start/finish/join
/// edges (thread_pool.hpp), the single-flight grid-map promise handoff
/// and the prov WAL flusher thread — and every access to a *tracked*
/// shared object (racer::Cell<T> or SCIDOCK_RACER_TRACK) is checked
/// against the object's shadow state: a write must happen-after every
/// prior access, a read must happen-after the last write.
///
/// Unordered pairs are reported with both access sites (file:line), the
/// locks held at each, and a missing-edge diagnosis:
///   - RC001 write-write race,
///   - RC002 read-write race,
///   - RC003 unsynchronized publish: the first time another thread sees
///     the object there is no happens-before edge since its last write
///     (classic "constructed here, used over there, nothing in between"),
///   - RC004 order-nondeterminism: a named reduction (FEB/score
///     accumulation, AutoGrid slab merge, sharded SQL aggregation merge)
///     produced different per-key contributions across runs/thread
///     counts — the bit-identity killer the kernel-equivalence suite can
///     detect but not attribute. Reductions record (key, value-hash)
///     pairs via on_reduction(); snapshots from a 1-thread and an
///     N-thread run are diffed by compare_reduction_snapshots(), which
///     names the culprit reduction and first differing key. A duplicate
///     key with a conflicting hash inside one run is reported
///     immediately. The per-reduction *arrival-order* digest is also
///     kept: when contributions match but arrive in a different order
///     the comparison records an informational note (benign for
///     commutative merges, the smoking gun for float accumulation).
///
/// Compile-time gated like lockdep: with the SCIDOCK_RACER CMake option
/// OFF (the default) every hook in this header is an empty inline, the
/// Cell<T> wrapper is exactly a T, and no shadow state exists — zero
/// cost on the hot path. With it ON the checks run on every tracked
/// access (bench_racer gates the overhead <= 10% on the full screen).
///
/// Findings carry stable rule IDs through lint::Diagnostics (RC001..
/// RC004, see lint::rule_catalog() and lint/racer_lint.hpp);
/// chaos::InvariantChecker::check_racer asserts a clean report after
/// every sweep, and chaos_profile_racer() perturbs task completion
/// order under a fixed seed so interleaving coverage is reproducible.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(SCIDOCK_RACER)
#define SCIDOCK_RACER_ENABLED 1
#include <source_location>
#else
#define SCIDOCK_RACER_ENABLED 0
#endif

namespace scidock::racer {

/// Report classes, in rule-ID order (RC001..RC004).
enum class ReportKind {
  kWriteWrite,            ///< RC001: two writes with no HB edge between
  kReadWrite,             ///< RC002: read and write with no HB edge
  kUnsyncPublish,         ///< RC003: object crossed threads unsynchronized
  kOrderNondeterminism,   ///< RC004: reduction result depends on schedule
};

std::string_view to_string(ReportKind kind);
/// Stable diagnostic rule ID ("RC001".."RC004").
std::string_view rule_id(ReportKind kind);

struct Finding {
  ReportKind kind = ReportKind::kWriteWrite;
  bool is_error = true;  ///< order-only digest notes are warnings
  std::string message;   ///< one-line summary
  std::string object;    ///< tracked-object or reduction name
  std::string file;      ///< current (second) access site
  int line = 0;
  std::string prior_file;  ///< prior (first) access site; "" for RC004
  int prior_line = 0;
  std::string details;  ///< both sites, held locks, missing-edge diagnosis
};

/// Monotone bookkeeping counters, exported through obs::MetricsRegistry
/// by obs::publish_racer_metrics (scidock_racer_* series).
struct CounterSnapshot {
  long long threads = 0;         ///< thread slots ever registered
  long long sync_objects = 0;    ///< mutexes + ad-hoc HB ids seen
  long long cells = 0;           ///< tracked shared objects ever seen
  long long reads = 0;
  long long writes = 0;
  long long mutex_edges = 0;     ///< release→acquire joins applied
  long long task_edges = 0;      ///< fork + join edges applied
  long long hb_edges = 0;        ///< ad-hoc release→acquire joins
  long long reduction_records = 0;
  long long findings_error = 0;
  long long findings_warning = 0;
};

/// Per-reduction deterministic digest: the keyed canonical form (what
/// compare_reduction_snapshots() diffs) plus the arrival-order digest.
struct ReductionDigest {
  long long records = 0;
  std::uint64_t order_digest = 0;            ///< sensitive to arrival order
  std::map<std::uint64_t, std::uint64_t> keyed;  ///< key → value hash
};
/// name → digest, as captured by reduction_snapshot().
using ReductionSnapshot = std::map<std::string, ReductionDigest>;

/// True when the analyzer was compiled in (SCIDOCK_RACER=ON).
constexpr bool compiled_in() { return SCIDOCK_RACER_ENABLED != 0; }

#if SCIDOCK_RACER_ENABLED

/// Runtime kill-switch (compiled-in builds only): bench_racer measures
/// its baseline with checks off. Enabled by default.
void set_enabled(bool enabled);
bool enabled();

// ---- synchronisation hooks (wired into the primitives) ----

/// Names the sync object at `id` (Mutex constructor registers itself so
/// diagnoses read "prov.shard", not "sync@0x7f..."). Idempotent.
void register_sync(const void* id, const char* name);
/// Forget a sync object (Mutex destructor): its address may be reused.
void unregister_sync(const void* id);

/// After the underlying lock: join the acquirer's clock with the lock's
/// release clock, and push the lock onto the held list (diagnosis).
void on_mutex_acquire(const void* id);
/// Before the underlying unlock: fold the holder's clock into the lock's
/// release clock, bump the holder's epoch, pop the held list.
void on_mutex_release(const void* id);

/// Ad-hoc release→acquire edge keyed on any stable address (the
/// single-flight MapFlight promise, a channel, ...). `what` names the
/// handshake in diagnoses. Release before publishing, acquire after
/// observing.
void on_hb_release(const void* id, const char* what);
void on_hb_acquire(const void* id, const char* what);

// ---- pool / thread fork-join edges ----

/// Opaque fork token: captured in the spawning thread, carried with the
/// task, redeemed in the executing thread (start) and at join.
struct TaskEdge {
  std::shared_ptr<void> state;  ///< null when the analyzer is disabled
};

/// Spawn point (ThreadPool::submit, std::thread launch): snapshots the
/// spawner's clock into the edge and bumps the spawner's epoch.
TaskEdge on_task_spawn();
/// Task body entry in the executing thread: join with the fork snapshot.
void on_task_start(const TaskEdge& edge);
/// Task body exit: snapshot the executing thread's clock into the edge
/// and bump its epoch, so a joiner can happen-after the whole task.
void on_task_finish(const TaskEdge& edge);
/// After future.get()/thread.join(): join with the finish snapshot.
void on_task_join(const TaskEdge& edge);

/// RAII start/finish pair around a task body.
class TaskRun {
 public:
  explicit TaskRun(const TaskEdge& edge) : edge_(edge) {
    on_task_start(edge_);
  }
  ~TaskRun() { on_task_finish(edge_); }
  TaskRun(const TaskRun&) = delete;
  TaskRun& operator=(const TaskRun&) = delete;

 private:
  const TaskEdge& edge_;
};

// ---- tracked shared objects ----

/// Register shadow state for the object at `addr`. The registration
/// counts as the initial write (construction publishes the object).
/// `name` may be null: diagnoses then fall back to the track site.
void track(const void* addr, const char* name,
           std::source_location site = std::source_location::current());
/// Drop shadow state (destructor): the address may be reused.
void untrack(const void* addr);

/// Check + record an access. Unknown addresses self-register on first
/// access (the first access becomes the baseline). Hooks are called
/// BEFORE the actual load/store so the analyzer's own internal lock
/// cannot manufacture a happens-before edge that hides the race from
/// ThreadSanitizer in cross-check builds.
void on_read(const void* addr,
             std::source_location site = std::source_location::current());
void on_write(const void* addr,
              std::source_location site = std::source_location::current());

// ---- reductions (RC004) ----

/// Record one contribution to the named reduction: `key` identifies the
/// logical slot (pair id, slab index, shard index), `value_hash` the
/// bit pattern contributed. Same key + different hash within a run is
/// an immediate RC004 (two threads fought over one slot).
void on_reduction(const char* name, std::uint64_t key,
                  std::uint64_t value_hash);

/// Snapshot all reduction digests recorded since the last reset.
ReductionSnapshot reduction_snapshot();

/// Diff two snapshots (e.g. 1-thread vs N-thread runs of the same
/// workload). Key-set or per-key hash differences file an RC004 error
/// naming the reduction and the first differing key; identical keyed
/// digests with different arrival order file an informational warning.
/// Returns the number of error findings recorded.
int compare_reduction_snapshots(const ReductionSnapshot& base,
                                const ReductionSnapshot& other,
                                const char* base_label,
                                const char* other_label);

// ---- reporting ----

std::vector<Finding> findings();
std::size_t finding_count(ReportKind kind);
CounterSnapshot counters();
/// No error-severity findings (order-digest notes tolerated).
bool clean();
/// Human-readable report: counters, then every finding with both sites
/// and the missing-edge diagnosis. Ends with "racer: clean".
std::string format_report();
/// Clear findings, shadow cells, sync clocks, reductions and counters.
/// Thread slots and their clocks survive (they are baked into live
/// threads) — call between runs, not mid-flight.
void reset();

#else  // ---- SCIDOCK_RACER off: every hook is a no-op ----

inline void set_enabled(bool) {}
inline bool enabled() { return false; }

inline void register_sync(const void*, const char*) {}
inline void unregister_sync(const void*) {}
inline void on_mutex_acquire(const void*) {}
inline void on_mutex_release(const void*) {}
inline void on_hb_release(const void*, const char*) {}
inline void on_hb_acquire(const void*, const char*) {}

struct TaskEdge {};
inline TaskEdge on_task_spawn() { return {}; }
inline void on_task_start(const TaskEdge&) {}
inline void on_task_finish(const TaskEdge&) {}
inline void on_task_join(const TaskEdge&) {}
class TaskRun {
 public:
  explicit TaskRun(const TaskEdge&) {}
};

inline void track(const void*, const char*) {}
inline void untrack(const void*) {}
inline void on_read(const void*) {}
inline void on_write(const void*) {}

inline void on_reduction(const char*, std::uint64_t, std::uint64_t) {}
inline ReductionSnapshot reduction_snapshot() { return {}; }
inline int compare_reduction_snapshots(const ReductionSnapshot&,
                                       const ReductionSnapshot&, const char*,
                                       const char*) {
  return 0;
}

inline std::vector<Finding> findings() { return {}; }
inline std::size_t finding_count(ReportKind) { return 0; }
inline CounterSnapshot counters() { return {}; }
inline bool clean() { return true; }
inline std::string format_report() {
  return "racer: disabled at build time (configure with "
         "-DSCIDOCK_RACER=ON)\n";
}
inline void reset() {}

#endif  // SCIDOCK_RACER_ENABLED

/// Shared value with racer shadow state. With the analyzer compiled in,
/// every read()/write()/mutate() goes through on_read/on_write (hook
/// first, access second); compiled out it is a bare T with zero-cost
/// inline accessors. The object name appears in findings.
template <typename T>
class Cell {
 public:
#if SCIDOCK_RACER_ENABLED
  explicit Cell(const char* name = nullptr,
                std::source_location site = std::source_location::current()) {
    track(&value_, name, site);
  }
  Cell(T initial, const char* name,
       std::source_location site = std::source_location::current())
      : value_(std::move(initial)) {
    track(&value_, name, site);
  }
  ~Cell() { untrack(&value_); }

  const T& read(
      std::source_location site = std::source_location::current()) const {
    on_read(&value_, site);
    return value_;
  }
  void write(T v,
             std::source_location site = std::source_location::current()) {
    on_write(&value_, site);
    value_ = std::move(v);
  }
  /// Mutable access counted as a write (increment, push_back, ...).
  T& mutate(std::source_location site = std::source_location::current()) {
    on_write(&value_, site);
    return value_;
  }
#else
  explicit Cell(const char* = nullptr) {}
  Cell(T initial, const char*) : value_(std::move(initial)) {}

  const T& read() const { return value_; }
  void write(T v) { value_ = std::move(v); }
  T& mutate() { return value_; }
#endif

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

 private:
  T value_{};
};

}  // namespace scidock::racer

/// Annotate an existing object (member, buffer slot) for race checking
/// without wrapping it in a Cell: TRACK at construction / ownership
/// hand-off, READ/WRITE at each access, UNTRACK before destruction.
#if SCIDOCK_RACER_ENABLED
#define SCIDOCK_RACER_TRACK(obj, name) ::scidock::racer::track(&(obj), (name))
#define SCIDOCK_RACER_UNTRACK(obj) ::scidock::racer::untrack(&(obj))
#define SCIDOCK_RACER_READ(obj) ::scidock::racer::on_read(&(obj))
#define SCIDOCK_RACER_WRITE(obj) ::scidock::racer::on_write(&(obj))
#else
#define SCIDOCK_RACER_TRACK(obj, name) ((void)0)
#define SCIDOCK_RACER_UNTRACK(obj) ((void)0)
#define SCIDOCK_RACER_READ(obj) ((void)0)
#define SCIDOCK_RACER_WRITE(obj) ((void)0)
#endif
