// Table 1: characteristics of the VM types used by the virtual cluster.

#include <cstdio>

#include "bench_common.hpp"
#include "cloud/vm.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: VM catalogue", "Table 1");
  std::printf("%-12s | %7s | %-20s | %6s | %8s\n", "Instance Type", "# cores",
              "Physical Processor", "speed", "$/hour");
  std::printf("-------------+---------+----------------------+--------+---------\n");
  for (const cloud::VmType& t : cloud::vm_catalogue()) {
    std::printf("%-12s | %7d | %-20s | %6.2f | %8.3f\n", t.name.c_str(),
                t.cores, t.physical_processor.c_str(), t.speed_factor,
                t.hourly_cost_usd);
  }
  std::printf("\n");
  bench::print_compare("m3.xlarge cores", "4", "4");
  bench::print_compare("m3.2xlarge cores", "8", "8");
  bench::print_compare("physical processor", "Intel Xeon E5-2670",
                       cloud::vm_type_m3_xlarge().physical_processor);
  return 0;
}
