#include "sql/sharded.hpp"

#include <bit>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "sql/parser.hpp"
#include "util/error.hpp"
#include "util/racer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

namespace {

bool is_aggregate_call(const Expr& e) {
  return e.kind == Expr::Kind::Call &&
         (e.call_name == "min" || e.call_name == "max" ||
          e.call_name == "sum" || e.call_name == "avg" ||
          e.call_name == "count");
}

/// Factories keyed by the textual form of the sub-expression they
/// replace: group keys map to their merge-table key column, aggregate
/// calls to their re-aggregation over the partial columns.
using Rewrites = std::map<std::string, std::function<ExprPtr()>>;

ExprPtr rewrite_expr(const Expr& e, const Rewrites& rewrites) {
  const auto it = rewrites.find(e.to_string());
  if (it != rewrites.end()) return it->second();
  ExprPtr out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->qualifier = e.qualifier;
  out->column = e.column;
  out->binary_op = e.binary_op;
  out->unary_op = e.unary_op;
  out->call_name = e.call_name;
  out->star_arg = e.star_arg;
  out->negated = e.negated;
  if (e.lhs) out->lhs = rewrite_expr(*e.lhs, rewrites);
  if (e.rhs) out->rhs = rewrite_expr(*e.rhs, rewrites);
  for (const ExprPtr& a : e.args) out->args.push_back(rewrite_expr(*a, rewrites));
  return out;
}

/// Distinct aggregate calls of an expression tree, keyed by text
/// (aggregates cannot nest, so recursion stops at a match).
void collect_aggregates(const Expr& e,
                        std::map<std::string, const Expr*>& out) {
  if (is_aggregate_call(e)) {
    out.emplace(e.to_string(), &e);
    return;
  }
  if (e.lhs) collect_aggregates(*e.lhs, out);
  if (e.rhs) collect_aggregates(*e.rhs, out);
  for (const ExprPtr& a : e.args) collect_aggregates(*a, out);
}

ExprPtr bare_column(std::string name) {
  return Expr::make_column("", std::move(name));
}

ExprPtr agg_over(std::string fn, std::string column) {
  std::vector<ExprPtr> args;
  args.push_back(bare_column(std::move(column)));
  return Expr::make_call(std::move(fn), std::move(args));
}

/// Racer (RC004) reduction identity for one merge execution: the partial
/// statement's text plus the engine's query ordinal, so distinct queries
/// (and re-runs against a mutated store) occupy distinct key ranges.
std::uint64_t racer_query_key(const SelectStmt& partial, std::uint64_t seq) {
  std::uint64_t h = 1469598103934665603ULL ^ seq;
  const auto fold = [&h](std::string_view text) {
    h = (h ^ fnv1a64(text)) * 1099511628211ULL;
  };
  for (const SelectItem& item : partial.items) {
    fold(item.expr->to_string());
    fold(item.alias);
  }
  for (const TableRef& ref : partial.from) fold(ref.table);
  if (partial.where) fold(partial.where->to_string());
  for (const ExprPtr& g : partial.group_by) fold(g->to_string());
  return h;
}

/// Content digest of one shard's partial result (exact bit patterns for
/// doubles — the whole point is catching last-bit drift).
std::uint64_t racer_rows_hash(const std::vector<Row>& rows) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto fold = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
  for (const Row& row : rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        fold(0x6e756c6cULL);
      } else if (v.is_int()) {
        fold(static_cast<std::uint64_t>(v.as_int()) ^
             (std::uint64_t{1} << 62));
      } else if (v.is_double()) {
        fold(std::bit_cast<std::uint64_t>(v.as_double()));
      } else {
        fold(fnv1a64(v.as_string()));
      }
    }
  }
  return h;
}

/// Shallow statement pieces shared by both merge plans.
void copy_from_where(const SelectStmt& stmt, SelectStmt& partial) {
  partial.from = stmt.from;
  if (stmt.where) partial.where = stmt.where->clone();
}

}  // namespace

ShardedEngine::ShardedEngine(std::vector<Database*> shards,
                             std::vector<std::string> replicated_tables)
    : shards_(std::move(shards)),
      replicated_tables_(std::move(replicated_tables)) {
  SCIDOCK_REQUIRE(!shards_.empty(), "ShardedEngine needs at least one shard");
}

bool ShardedEngine::replicated(const std::string& table) const {
  for (const std::string& t : replicated_tables_) {
    if (iequals(t, table)) return true;
  }
  return false;
}

ResultSet ShardedEngine::execute(std::string_view sql) {
  if (shards_.size() == 1) {
    Engine engine(*shards_[0]);
    return engine.execute(sql);
  }
  const Statement stmt = parse_statement(sql);
  SCIDOCK_REQUIRE(stmt.kind == Statement::Kind::Select,
                  "only SELECT is supported across provenance shards; "
                  "writes go through the recording API");
  return execute_select(stmt.select);
}

ResultSet ShardedEngine::execute_select(const SelectStmt& stmt) {
  SCIDOCK_REQUIRE(!stmt.from.empty(), "SELECT requires a FROM clause");
  if (shards_.size() == 1) {
    Engine engine(*shards_[0]);
    return engine.execute_select(stmt);
  }
  bool all_replicated = true;
  for (const TableRef& ref : stmt.from) {
    if (!replicated(ref.table)) all_replicated = false;
  }
  if (all_replicated) {
    // Dimension-only query: shard 0 holds the authoritative copy.
    Engine engine(*shards_[0]);
    return engine.execute_select(stmt);
  }

  bool has_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (contains_aggregate(*item.expr)) has_aggregate = true;
  }
  if (has_aggregate || !stmt.group_by.empty()) return merge_grouped(stmt);
  return merge_scan(stmt);
}

ResultSet ShardedEngine::merge_scan(const SelectStmt& stmt) {
  // Per-shard statement: the projected expressions plus one hidden column
  // per ORDER BY key, full WHERE pushdown, no ordering/limit yet.
  SelectStmt partial;
  copy_from_where(stmt, partial);

  std::vector<std::string> names;  ///< final header, single-shard spelling
  if (stmt.star_all) {
    for (const TableRef& ref : stmt.from) {
      const Table& t = shards_[0]->table(ref.table);
      const std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
      for (const std::string& col : t.columns()) {
        partial.items.push_back({Expr::make_column(qualifier, col), ""});
        names.push_back(col);
      }
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      partial.items.push_back({item.expr->clone(), item.alias});
      names.push_back(derive_select_column_name(item));
    }
  }
  const std::size_t width = names.size();

  std::vector<bool> descending;
  for (const OrderItem& o : stmt.order_by) {
    // Bare-column keys naming a select alias mean the aliased expression
    // (engine semantics); resolve before shipping to the shards.
    const Expr* resolved = o.expr.get();
    if (resolved->kind == Expr::Kind::Column && resolved->qualifier.empty()) {
      for (const SelectItem& item : stmt.items) {
        if (!item.alias.empty() && iequals(item.alias, resolved->column)) {
          resolved = item.expr.get();
          break;
        }
      }
    }
    partial.items.push_back(
        {resolved->clone(), strformat("__ord%zu", descending.size())});
    descending.push_back(o.descending);
  }

  Database merged;
  std::vector<std::string> columns;
  columns.reserve(width + descending.size());
  for (std::size_t i = 0; i < width + descending.size(); ++i) {
    columns.push_back(strformat("m%zu", i));
  }
  Table& table = merged.create_table("__rows", columns);
  const std::uint64_t qkey = racer::enabled()
                                 ? racer_query_key(partial, racer_query_seq_++)
                                 : racer_query_seq_++;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Engine engine(*shards_[s]);
    ResultSet part = engine.execute_select(partial);
    if (racer::enabled()) {
      // Each shard's partial is one slot of the merge reduction: a
      // schedule-dependent partial shows up as an RC004 naming it.
      racer::on_reduction("sql.sharded.merge",
                          qkey ^ (0x9e3779b97f4a7c15ULL * (s + 1)),
                          racer_rows_hash(part.rows));
    }
    for (Row& row : part.rows) table.insert(std::move(row));
  }

  SelectStmt final_stmt;
  final_stmt.distinct = stmt.distinct;
  final_stmt.from.push_back(TableRef{"__rows", ""});
  for (std::size_t i = 0; i < width; ++i) {
    final_stmt.items.push_back(
        {bare_column(strformat("m%zu", i)), strformat("__c%zu", i)});
  }
  for (std::size_t k = 0; k < descending.size(); ++k) {
    final_stmt.order_by.push_back(
        {bare_column(strformat("m%zu", width + k)), descending[k]});
  }
  final_stmt.limit = stmt.limit;

  Engine engine(merged);
  ResultSet rs = engine.execute_select(final_stmt);
  rs.columns = std::move(names);
  return rs;
}

ResultSet ShardedEngine::merge_grouped(const SelectStmt& stmt) {
  SCIDOCK_REQUIRE(!stmt.star_all, "SELECT * cannot be combined with GROUP BY");

  SelectStmt partial;
  copy_from_where(stmt, partial);
  Rewrites rewrites;
  std::vector<std::string> columns;  ///< merge-table schema

  // Group keys project through as k0..kM and group the partials too.
  for (std::size_t g = 0; g < stmt.group_by.size(); ++g) {
    const std::string name = strformat("k%zu", g);
    partial.items.push_back({stmt.group_by[g]->clone(), name});
    partial.group_by.push_back(stmt.group_by[g]->clone());
    columns.push_back(name);
    const auto key_column = [name]() { return bare_column(name); };
    rewrites[stmt.group_by[g]->to_string()] = key_column;
    if (stmt.group_by[g]->kind == Expr::Kind::Column &&
        !stmt.group_by[g]->qualifier.empty()) {
      // Tolerate the unqualified spelling of the same key.
      rewrites.emplace(stmt.group_by[g]->column, key_column);
    }
  }

  // Every distinct aggregate becomes one partial column (two for avg),
  // and its final form re-aggregates the partials.
  std::map<std::string, const Expr*> aggregates;
  for (const SelectItem& item : stmt.items) {
    collect_aggregates(*item.expr, aggregates);
  }
  if (stmt.having) collect_aggregates(*stmt.having, aggregates);
  for (const OrderItem& o : stmt.order_by) {
    collect_aggregates(*o.expr, aggregates);
  }
  std::size_t p = 0;
  for (const auto& [text, call] : aggregates) {
    if (call->call_name == "avg") {
      const std::string sum_col = strformat("p%zus", p);
      const std::string count_col = strformat("p%zuc", p);
      std::vector<ExprPtr> sum_args;
      sum_args.push_back(call->args[0]->clone());
      partial.items.push_back(
          {Expr::make_call("sum", std::move(sum_args)), sum_col});
      std::vector<ExprPtr> count_args;
      count_args.push_back(call->args[0]->clone());
      partial.items.push_back(
          {Expr::make_call("count", std::move(count_args)), count_col});
      columns.push_back(sum_col);
      columns.push_back(count_col);
      rewrites[text] = [sum_col, count_col]() {
        return Expr::make_binary(BinaryOp::Div, agg_over("sum", sum_col),
                                 agg_over("sum", count_col));
      };
    } else {
      const std::string col = strformat("p%zu", p);
      partial.items.push_back({call->clone(), col});
      columns.push_back(col);
      const std::string merge_fn =
          call->call_name == "count" ? "sum" : call->call_name;
      rewrites[text] = [merge_fn, col]() { return agg_over(merge_fn, col); };
    }
    ++p;
  }

  Database merged;
  Table& table = merged.create_table("__partials", columns);
  const std::uint64_t qkey = racer::enabled()
                                 ? racer_query_key(partial, racer_query_seq_++)
                                 : racer_query_seq_++;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Engine engine(*shards_[s]);
    ResultSet part = engine.execute_select(partial);
    if (racer::enabled()) {
      racer::on_reduction("sql.sharded.merge",
                          qkey ^ (0x9e3779b97f4a7c15ULL * (s + 1)),
                          racer_rows_hash(part.rows));
    }
    for (Row& row : part.rows) table.insert(std::move(row));
  }

  // Final statement: the original shape with group keys and aggregates
  // substituted; HAVING / ORDER BY / DISTINCT / LIMIT run on the merge.
  SelectStmt final_stmt;
  final_stmt.distinct = stmt.distinct;
  final_stmt.from.push_back(TableRef{"__partials", ""});
  for (const SelectItem& item : stmt.items) {
    final_stmt.items.push_back(
        {rewrite_expr(*item.expr, rewrites),
         item.alias.empty() ? derive_select_column_name(item) : item.alias});
  }
  for (std::size_t g = 0; g < stmt.group_by.size(); ++g) {
    final_stmt.group_by.push_back(bare_column(strformat("k%zu", g)));
  }
  if (stmt.having) final_stmt.having = rewrite_expr(*stmt.having, rewrites);
  for (const OrderItem& o : stmt.order_by) {
    final_stmt.order_by.push_back({rewrite_expr(*o.expr, rewrites), o.descending});
  }
  final_stmt.limit = stmt.limit;

  Engine engine(merged);
  ResultSet rs = engine.execute_select(final_stmt);

  // count(...) re-aggregates as a sum, which the engine accumulates in
  // floating point; restore the integer type a single shard returns.
  for (std::size_t i = 0; i < stmt.items.size(); ++i) {
    if (!is_aggregate_call(*stmt.items[i].expr) ||
        stmt.items[i].expr->call_name != "count") {
      continue;
    }
    for (Row& row : rs.rows) {
      if (row[i].is_double()) {
        row[i] = Value(static_cast<std::int64_t>(std::llround(row[i].as_double())));
      }
    }
  }
  return rs;
}

}  // namespace scidock::sql
