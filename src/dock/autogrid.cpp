#include "dock/autogrid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::dock {

GridMapCalculator::GridMapCalculator(const mol::Molecule& receptor,
                                     AutogridOptions opts)
    : receptor_(receptor), opts_(opts), neighbors_(receptor, opts.cutoff) {
  SCIDOCK_ASSERT_MSG(receptor.perceived(), "prepare the receptor before AutoGrid");
}

GridMapSet GridMapCalculator::calculate(
    const GridBox& box, const std::vector<mol::AdType>& ligand_types) const {
  GridMapSet set;
  set.box = box;
  set.electrostatic = GridMap(box, "e");
  set.desolvation = GridMap(box, "d");
  for (mol::AdType t : ligand_types) {
    set.affinity.emplace_back(t, GridMap(box, std::string(mol::ad_type_name(t))));
  }

  const mol::Vec3 origin = box.origin();
  constexpr double kCoulomb = 332.06;
  constexpr double kSigma = 3.6;

  for (int iz = 0; iz < box.npts[2]; ++iz) {
    for (int iy = 0; iy < box.npts[1]; ++iy) {
      for (int ix = 0; ix < box.npts[0]; ++ix) {
        const mol::Vec3 p{origin.x + ix * box.spacing,
                          origin.y + iy * box.spacing,
                          origin.z + iz * box.spacing};
        double e_elec = 0.0;
        double e_desolv = 0.0;
        // Accumulate per-type affinities in a dense temp indexed like
        // set.affinity to avoid a map lookup per (point, atom).
        std::vector<double> e_aff(ligand_types.size(), 0.0);

        neighbors_.for_each_within(p, [&](int ai, double d2) {
          const mol::Atom& atom = receptor_.atom(ai);
          const double r = std::max(std::sqrt(d2), 0.5);
          e_elec += opts_.weights.estat * kCoulomb * atom.partial_charge /
                    (mehler_solmajer_dielectric(r) * r);
          const auto& pa = mol::ad_type_params(atom.ad_type);
          // Receptor-side volume term only; the ligand atom's solvation
          // parameter (solpar_i + qasp*|q_i|) multiplies in at sample time
          // (AD4 map semantics; the product is O(0.01) per contact).
          e_desolv += opts_.weights.desolv * pa.volume *
                      std::exp(-(r * r) / (2.0 * kSigma * kSigma));
          for (std::size_t t = 0; t < ligand_types.size(); ++t) {
            e_aff[t] += ad4_vdw_hbond(ligand_types[t], atom.ad_type, r,
                                      opts_.weights);
          }
        });

        set.electrostatic.at(ix, iy, iz) = e_elec;
        set.desolvation.at(ix, iy, iz) = e_desolv;
        for (std::size_t t = 0; t < ligand_types.size(); ++t) {
          set.affinity[t].second.at(ix, iy, iz) = e_aff[t];
        }
      }
    }
  }
  return set;
}

std::string GridParameterFile::to_text() const {
  std::string out;
  out += strformat("npts %d %d %d\n", box.npts[0] - 1, box.npts[1] - 1,
                   box.npts[2] - 1);
  out += "gridfld receptor.maps.fld\n";
  out += strformat("spacing %.4f\n", box.spacing);
  std::string types;
  for (mol::AdType t : ligand_types) {
    if (!types.empty()) types += ' ';
    types += std::string(mol::ad_type_name(t));
  }
  out += "ligand_types " + types + "\n";
  out += "receptor " + receptor_file + "\n";
  out += strformat("gridcenter %.3f %.3f %.3f\n", box.center.x, box.center.y,
                   box.center.z);
  for (mol::AdType t : ligand_types) {
    out += "map receptor." + std::string(mol::ad_type_name(t)) + ".map\n";
  }
  out += "elecmap receptor.e.map\ndsolvmap receptor.d.map\n";
  out += "dielectric -0.1465\n";
  return out;
}

GridParameterFile GridParameterFile::parse(std::string_view text) {
  GridParameterFile gpf;
  std::istringstream in{std::string(text)};
  std::string line;
  bool saw_npts = false;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    if (fields.empty() || fields[0][0] == '#') continue;
    if (fields[0] == "npts" && fields.size() >= 4) {
      gpf.box.npts = {static_cast<int>(parse_int(fields[1], "gpf npts")) + 1,
                      static_cast<int>(parse_int(fields[2], "gpf npts")) + 1,
                      static_cast<int>(parse_int(fields[3], "gpf npts")) + 1};
      saw_npts = true;
    } else if (fields[0] == "spacing" && fields.size() >= 2) {
      gpf.box.spacing = parse_double(fields[1], "gpf spacing");
    } else if (fields[0] == "gridcenter" && fields.size() >= 4) {
      gpf.box.center = {parse_double(fields[1], "gpf center"),
                        parse_double(fields[2], "gpf center"),
                        parse_double(fields[3], "gpf center")};
    } else if (fields[0] == "ligand_types") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto t = mol::ad_type_from_name(fields[i]);
        if (!t) throw ParseError("GPF", "unknown ligand type " + fields[i]);
        gpf.ligand_types.push_back(*t);
      }
    } else if (fields[0] == "receptor" && fields.size() >= 2) {
      gpf.receptor_file = fields[1];
    }
  }
  if (!saw_npts) throw ParseError("GPF", "missing npts record");
  return gpf;
}

GridParameterFile make_gpf(const mol::Molecule& receptor,
                           const mol::Molecule& ligand, double box_padding,
                           double spacing) {
  GridParameterFile gpf;
  const double half_extent =
      std::max(ligand.radius_of_gyration() * 2.0 + box_padding, 8.0);
  gpf.box = GridBox::around(receptor.center(), half_extent, spacing);
  {
    mol::Molecule lig = ligand;
    lig.perceive();
    gpf.ligand_types = lig.ad_types_present();
  }
  gpf.receptor_file = receptor.name() + ".pdbqt";
  gpf.ligand_file = ligand.name() + ".pdbqt";
  return gpf;
}

}  // namespace scidock::dock
