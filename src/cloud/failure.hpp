#pragma once

/// \file failure.hpp
/// Failure injection for the simulated executor. The paper reports ~10 %
/// of SciDock activations fail and must be re-executed, and that certain
/// inputs (Hg-containing receptors, "problematic" ligands) leave the real
/// tools in an infinite "looping state" that only aborts on timeout.

#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace scidock::cloud {

enum class ActivationOutcome {
  Success,
  Failure,  ///< crashes with an error; re-executed immediately
  Hang,     ///< looping state; aborted after hang_timeout, then re-executed
};

struct FailureModelOptions {
  double failure_probability = 0.10;  ///< the paper's ~10 % failure rate
  double hang_probability = 0.005;    ///< random looping-state incidence
  double hang_timeout_s = 1800.0;     ///< watchdog before abort (30 min)
  int max_attempts = 5;               ///< give up after this many tries
};

class FailureModel {
 public:
  explicit FailureModel(FailureModelOptions opts = {}) : opts_(opts) {}

  /// Draw the outcome of one activation attempt. `deterministic_hang`
  /// forces a hang regardless of the dice (the Hg-receptor case — the
  /// input always hangs the tool, it is not random).
  ActivationOutcome sample(Rng& rng, bool deterministic_hang = false) const;

  const FailureModelOptions& options() const { return opts_; }

 private:
  FailureModelOptions opts_;
};

}  // namespace scidock::cloud
