#pragma once

/// \file scidock.hpp
/// The SciDock workflow itself: the paper's eight activities implemented
/// over the mol/dock libraries and bound into a wf::Pipeline, plus the
/// Figure 2 XML definition.
///
/// Activity map (paper Figure 1):
///   1 babel         — SDF -> MOL2 conversion
///   2 prepligand    — MOL2 -> ligand PDBQT (charges, types, torsion tree)
///   3 prepreceptor  — PDB -> rigid receptor PDBQT (hangs on Hg upstream)
///   4 gpfprep       — grid parameter file from the PDBQT pair
///   5 autogrid      — coordinate/affinity maps
///   6 dockfilter    — size-based routing: AD4 (small) vs Vina (large)
///   7a dpfprep      — AD4 docking parameter file
///   7b confprep     — Vina configuration file
///   8a autodock4    — LGA docking over the maps, .dlg output
///   8b autodockvina — MC docking, Vina log output

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "data/generator.hpp"
#include "dock/dpf.hpp"
#include "dock/grid.hpp"
#include "mol/prepare.hpp"
#include "util/thread_annotations.hpp"
#include "wf/pipeline.hpp"
#include "wf/workflow.hpp"

namespace scidock::core {

/// Which docking program handles each pair (paper §V.B scenarios).
enum class EngineMode {
  Adaptive,   ///< activity 6 routes by receptor size (SciDock's design)
  ForceAd4,   ///< Scenario I: the whole set through AutoDock 4
  ForceVina,  ///< Scenario II: the whole set through Vina
};

struct ScidockOptions {
  data::GeneratorOptions dataset{};
  EngineMode engine_mode = EngineMode::Adaptive;

  /// Search effort — defaults are deliberately small so native runs of
  /// hundreds of pairs finish in seconds; raise for higher-quality poses.
  dock::DockingParameterFile ad4_params{
      .ga_runs = 2, .ga_pop_size = 24, .ga_num_evals = 3000,
      .ga_num_generations = 60, .sw_max_its = 50};
  int vina_exhaustiveness = 3;
  int vina_steps_per_chain = 40;

  double grid_spacing = 0.55;   ///< Å; AutoGrid's default 0.375 is slower
  bool write_map_files = false; ///< also serialise .map files to the VFS
  /// Single-flight grid-map reuse (DESIGN.md §10): AutoGrid activations
  /// sharing a (receptor, box, type-set) key compute the map set once and
  /// share the result. Off recomputes per tuple, as the paper's original
  /// workflow does; outputs are bit-identical either way.
  bool reuse_grid_maps = true;
  std::string expdir = "/root/exp_SciDock";
};

/// How a get_or_compute_maps call was satisfied. An activation reports
/// exactly one outcome, so summed over a run:
///   hits + misses + inflight_waits == finished AutoGrid activations.
enum class CacheOutcome {
  kHit,           ///< result was already computed and ready
  kMiss,          ///< this caller computed it (single-flight owner)
  kInflightWait,  ///< another caller was computing; this one blocked
};

/// Shared in-process cache of expensive intermediates (prepared
/// structures and grid maps), keyed by file path. Plays the role of a
/// VM-local scratch cache over the shared filesystem. Thread-safe;
/// shared_ptr values so readers keep entries alive without copying.
class ArtifactCache {
 public:
  using MapsPtr = std::shared_ptr<const dock::GridMapSet>;

  std::shared_ptr<const mol::PreparedLigand> ligand(const std::string& key);
  void put_ligand(const std::string& key, mol::PreparedLigand value);
  std::shared_ptr<const mol::PreparedReceptor> receptor(const std::string& key);
  void put_receptor(const std::string& key, mol::PreparedReceptor value);
  MapsPtr maps(const std::string& key);
  void put_maps(const std::string& key, dock::GridMapSet value);
  /// Register an additional name for an existing map set (the AutoGrid
  /// stage aliases its per-pair maps_prefix to the shared canonical set).
  void alias_maps(const std::string& key, MapsPtr value);

  /// Single-flight lookup: the first caller for `key` runs `compute` while
  /// concurrent callers for the same key block on its result instead of
  /// recomputing; later callers get the cached set. If `compute` throws,
  /// the flight is erased (a retry recomputes) and every caller sees the
  /// exception.
  std::pair<MapsPtr, CacheOutcome> get_or_compute_maps(
      const std::string& key, const std::function<dock::GridMapSet()>& compute);

 private:
  struct MapFlight {
    std::shared_ptr<std::promise<MapsPtr>> promise;
    std::shared_future<MapsPtr> future;
#if SCIDOCK_LOCKDEP_ENABLED
    /// ThreadPool the flight owner was a worker of (nullptr when the
    /// owner ran outside any pool); lets lockdep flag waiters that block
    /// on a flight owned by their own pool (DESIGN.md §11).
    const void* owner_pool = nullptr;
#endif
  };

  Mutex mutex_{"scidock.cache"};
  std::unordered_map<std::string, std::shared_ptr<const mol::PreparedLigand>>
      ligands_ SCIDOCK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<const mol::PreparedReceptor>>
      receptors_ SCIDOCK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, MapsPtr> maps_ SCIDOCK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, MapFlight> map_flights_
      SCIDOCK_GUARDED_BY(mutex_);
};

/// Build the runnable pipeline: all stages with native implementations,
/// routing, per-tuple workload scaling and the Hg hazard predicate. The
/// returned pipeline references `cache` and `opts` by value internally.
wf::Pipeline build_scidock_pipeline(const ScidockOptions& opts,
                                    std::shared_ptr<ArtifactCache> cache = nullptr);

std::shared_ptr<ArtifactCache> make_artifact_cache();

/// The static workflow definition matching the Figure 2 XML specification
/// (round-trips through wf::save_spec / wf::load_spec).
wf::WorkflowDef scidock_workflow_def(const ScidockOptions& opts = {});

/// Stage tags, exposed for benches/tests.
inline constexpr const char* kBabel = "babel";
inline constexpr const char* kPrepLigand = "prepligand";
inline constexpr const char* kPrepReceptor = "prepreceptor";
inline constexpr const char* kGpfPrep = "gpfprep";
inline constexpr const char* kAutogrid = "autogrid";
inline constexpr const char* kDockFilter = "dockfilter";
inline constexpr const char* kDpfPrep = "dpfprep";
inline constexpr const char* kConfPrep = "confprep";
inline constexpr const char* kAutodock4 = "autodock4";
inline constexpr const char* kAutodockVina = "autodockvina";

}  // namespace scidock::core
