#pragma once

/// \file sharded.hpp
/// Distributed SELECT execution over N shard databases that partition
/// the fact tables (hactivation, hfile, hvalue) and replicate the
/// dimension tables (hworkflow, hactivity, hmachine) — the query side of
/// the sharded provenance store (DESIGN.md §12).
///
/// Plan shapes:
///   * one shard, or a FROM list of replicated tables only
///       -> plain Engine on that shard (shard 0 holds every dimension row)
///   * scan / join without aggregation
///       -> the full WHERE (and the hash-join fast path it enables) runs
///          per shard; projected rows plus ORDER BY key columns merge
///          into a temp table; a final ORDER BY / DISTINCT / LIMIT pass
///          runs on the merge
///   * GROUP BY / aggregates
///       -> per-shard partial aggregation (count and sum partials; avg
///          decomposed into sum+count), then a rewritten final statement
///          re-aggregates the partials (count -> sum of partial counts,
///          min/max -> min/max, avg -> sum(sums)/sum(counts)) with
///          HAVING / ORDER BY / LIMIT applied after the merge
///
/// Because every fact row lives in exactly one shard and every dimension
/// row in all of them, the union of per-shard join results equals the
/// global join, so results match single-shard execution row for row (up
/// to float summation order; sum/avg may differ in the last bits).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sql/engine.hpp"

namespace scidock::sql {

class ShardedEngine {
 public:
  /// `shards` must stay valid (and, if shared, locked by the caller) for
  /// the duration of each execute call. `replicated_tables` lists the
  /// dimension tables present identically in every shard.
  ShardedEngine(std::vector<Database*> shards,
                std::vector<std::string> replicated_tables);

  /// Parse and run one statement. With more than one shard only SELECT
  /// is supported (the store's recording API is the write path);
  /// anything else throws InvalidStateError. A single shard passes every
  /// statement through to the plain engine.
  ResultSet execute(std::string_view sql);

  ResultSet execute_select(const SelectStmt& stmt);

 private:
  ResultSet merge_scan(const SelectStmt& stmt);
  ResultSet merge_grouped(const SelectStmt& stmt);
  bool replicated(const std::string& table) const;

  std::vector<Database*> shards_;
  std::vector<std::string> replicated_tables_;
  /// Merge-query ordinal folded into the racer RC004 reduction key, so
  /// re-running one query against a mutated store never collides with
  /// its earlier digest (program order is deterministic per workload).
  std::uint64_t racer_query_seq_ = 0;
};

}  // namespace scidock::sql
