// Edge-case coverage across modules: behaviours distinct from the main
// suites — NULL ordering, boundary geometry, degenerate workloads,
// scale-down elasticity, SQL corner semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "cloud/cluster.hpp"
#include "cloud/sim.hpp"
#include "dock/cluster.hpp"
#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/geometry.hpp"
#include "mol/torsion.hpp"
#include "sql/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "wf/sim_executor.hpp"

namespace scidock {
namespace {

// ------------------------------------------------------------------ SQL

class SqlEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    engine = std::make_unique<sql::Engine>(db);
    engine->execute("CREATE TABLE t (a int, s varchar(10))");
    engine->execute("INSERT INTO t VALUES (3, 'b'), (NULL, 'a'), (1, NULL)");
  }
  sql::Database db;
  std::unique_ptr<sql::Engine> engine;
};

TEST_F(SqlEdge, OrderBySortsNullsFirst) {
  const auto rs = engine->execute("SELECT a FROM t ORDER BY a");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_EQ(rs.rows[1][0].as_int(), 1);
  EXPECT_EQ(rs.rows[2][0].as_int(), 3);
}

TEST_F(SqlEdge, MinMaxIgnoreNulls) {
  const auto rs = engine->execute("SELECT min(a), max(a), avg(a) FROM t");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  EXPECT_EQ(rs.rows[0][1].as_int(), 3);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(), 2.0);  // avg over non-null
}

TEST_F(SqlEdge, GroupByNullFormsItsOwnGroup) {
  const auto rs = engine->execute(
      "SELECT s, count(*) FROM t GROUP BY s ORDER BY s");
  ASSERT_EQ(rs.rows.size(), 3u);  // NULL, 'a', 'b'
}

TEST_F(SqlEdge, LikeEdgePatterns) {
  sql::Database db2;
  sql::Engine e2(db2);
  e2.execute("CREATE TABLE p (x varchar(20))");
  e2.execute("INSERT INTO p VALUES ('abc'), (''), ('a%c'), ('axc')");
  EXPECT_EQ(e2.execute("SELECT count(*) FROM p WHERE x LIKE ''").rows[0][0].as_int(), 1);
  EXPECT_EQ(e2.execute("SELECT count(*) FROM p WHERE x LIKE '%'").rows[0][0].as_int(), 4);
  EXPECT_EQ(e2.execute("SELECT count(*) FROM p WHERE x LIKE 'a_c'").rows[0][0].as_int(), 3);
  EXPECT_EQ(e2.execute("SELECT count(*) FROM p WHERE x LIKE '%b%'").rows[0][0].as_int(), 1);
}

TEST_F(SqlEdge, ExtractDerivedFields) {
  // 1 day, 2 hours, 3 minutes, 4 seconds past the epoch.
  const double secs = 86400.0 + 2 * 3600.0 + 3 * 60.0 + 4.0;
  sql::Database db2;
  sql::Engine e2(db2);
  e2.execute("CREATE TABLE ts (t float)");
  e2.execute(strformat("INSERT INTO ts VALUES (%.1f)", secs));
  const auto rs = e2.execute(
      "SELECT extract('day' from t), extract('hour' from t), "
      "extract('minute' from t), extract('epoch' from t) FROM ts");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 2.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].as_double(), secs);
}

TEST_F(SqlEdge, ArithmeticOverAggregates) {
  const auto rs = engine->execute("SELECT avg(a) * 60 + 1 FROM t");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 121.0);
}

TEST_F(SqlEdge, CrossJoinWithoutPredicate) {
  sql::Database db2;
  sql::Engine e2(db2);
  e2.execute("CREATE TABLE a (x int)");
  e2.execute("CREATE TABLE b (y int)");
  e2.execute("INSERT INTO a VALUES (1), (2), (3)");
  e2.execute("INSERT INTO b VALUES (10), (20)");
  EXPECT_EQ(e2.execute("SELECT x, y FROM a, b").rows.size(), 6u);
}

TEST_F(SqlEdge, ParserRejectsMalformedInBetween) {
  EXPECT_THROW(engine->execute("SELECT a FROM t WHERE a IN ()"), ParseError);
  EXPECT_THROW(engine->execute("SELECT a FROM t WHERE a NOT 3"), ParseError);
  EXPECT_THROW(engine->execute("SELECT a FROM t WHERE a BETWEEN 1"), ParseError);
}

// ------------------------------------------------------------- geometry

TEST(GeometryEdge, QuaternionOfZeroAngleIsIdentity) {
  const mol::Quaternion q = mol::Quaternion::from_axis_angle({1, 2, 3}, 0.0);
  const mol::Vec3 v{4, 5, 6};
  EXPECT_NEAR(mol::distance(q.rotate(v), v), 0.0, 1e-12);
}

TEST(GeometryEdge, FullTurnReturnsToStart) {
  const mol::Quaternion q =
      mol::Quaternion::from_axis_angle({0, 1, 0}, 2.0 * std::numbers::pi);
  const mol::Vec3 v{1, 0, 0};
  EXPECT_NEAR(mol::distance(q.rotate(v), v), 0.0, 1e-9);
}

TEST(GeometryEdge, TorsionApplyIsPeriodic) {
  // Rotating a branch by 2*pi reproduces the original coordinates.
  mol::Molecule m{"chain"};
  for (int i = 0; i < 6; ++i) {
    mol::Atom a;
    a.element = mol::Element::C;
    a.pos = {i * 1.5, 0.3 * (i % 2), 0.0};
    m.add_atom(a);
  }
  for (int i = 0; i + 1 < 6; ++i) m.add_bond(i, i + 1);
  m.perceive();
  const mol::TorsionTree tree = mol::TorsionTree::build(m);
  ASSERT_GT(tree.torsion_count(), 0);
  const auto ref = m.coordinates();
  std::vector<double> full_turn(
      static_cast<std::size_t>(tree.torsion_count()), 2.0 * std::numbers::pi);
  const auto out = tree.apply(ref, mol::Pose{}, full_turn);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(mol::distance(ref[i], out[i]), 0.0, 1e-9);
  }
}

// ----------------------------------------------------------------- grid

TEST(GridEdge, SamplingIsContinuousAcrossCellBoundaries) {
  dock::GridBox box;
  box.npts = {5, 5, 5};
  box.spacing = 1.0;
  dock::GridMap map(box, "C");
  Rng rng(13);
  for (double& v : map.values()) v = rng.uniform(-5.0, 5.0);
  // Approach a grid plane from both sides: trilinear interpolation must
  // agree at the boundary.
  const mol::Vec3 on_plane{0.0, 0.3, -0.7};
  const double below = map.sample(on_plane - mol::Vec3{1e-9, 0, 0});
  const double above = map.sample(on_plane + mol::Vec3{1e-9, 0, 0});
  EXPECT_NEAR(below, above, 1e-6);
  // And exactly on a grid point it returns the stored value.
  EXPECT_NEAR(map.sample(box.origin()), map.at(0, 0, 0), 1e-12);
}

TEST(GridEdge, MinimalTwoPointGrid) {
  dock::GridBox box;
  box.npts = {2, 2, 2};
  box.spacing = 2.0;
  dock::GridMap map(box, "e");
  map.at(0, 0, 0) = -1.0;
  map.at(1, 1, 1) = 1.0;
  EXPECT_NEAR(map.sample(box.center), 0.0, 0.26);  // centre of the cell
}

// ---------------------------------------------------------------- cloud

TEST(CloudEdge, EmptySimulationRunsToZero) {
  cloud::Simulation sim;
  EXPECT_DOUBLE_EQ(sim.run(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(CloudEdge, SimExecutorOnEmptyRelation) {
  wf::Pipeline p;
  p.add_stage(wf::Stage{"a", wf::AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  cloud::CostModel model;
  model.set_cost({"a", 1.0, 0.1, 0.1});
  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(4);
  const wf::SimReport r =
      wf::SimulatedExecutor(p, model, opts).run(wf::Relation{{"id"}});
  EXPECT_EQ(r.tuples_completed, 0);
  EXPECT_EQ(r.activations_finished, 0);
}

TEST(CloudEdge, ElasticityReleasesIdleVmsWhenQueueDrains) {
  // A workload far smaller than max_vms: the controller must not hold
  // every VM until the end.
  wf::Pipeline p;
  p.add_stage(wf::Stage{"a", wf::AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  cloud::CostModel model;
  model.set_cost({"a", 2000.0, 0.2, 1.0});  // long tasks keep the sim alive
  wf::Relation rel{{"id"}};
  for (int i = 0; i < 64; ++i) {
    wf::Tuple t;
    t.set("id", std::to_string(i));
    rel.add(std::move(t));
  }
  wf::SimExecutorOptions opts;
  opts.fleet = {cloud::vm_type_m3_xlarge()};
  opts.failure.failure_probability = 0.0;
  opts.failure.hang_probability = 0.0;
  opts.elasticity = true;
  opts.min_vms = 1;
  opts.max_vms = 12;
  opts.elastic_vm_type = cloud::vm_type_m3_xlarge();
  opts.elasticity_period_s = 60.0;
  const wf::SimReport r = wf::SimulatedExecutor(p, model, opts).run(rel);
  EXPECT_EQ(r.tuples_completed, 64);
  EXPECT_GT(r.peak_alive_vms, 1);  // scaled up while the queue was deep
}

TEST(CloudEdge, CostModelLognormalFloorApplies) {
  cloud::CostModel model;
  model.set_cost({"x", 0.5, 2.5, 0.4});  // heavy-tailed, aggressive floor
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.sample("x", 1.0, 1.0, rng), 0.4);
  }
}

// ----------------------------------------------------------- scoring

TEST(ScoringEdge, Ad4EnergyAtContactDistanceZeroIsClamped) {
  // Coincident atoms must not produce inf/NaN.
  const double e = dock::ad4_pair_energy(mol::AdType::C, 0.3, mol::AdType::OA,
                                         -0.3, 0.0);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_GT(e, 0.0);  // strongly repulsive, but bounded
}

TEST(ScoringEdge, ClusteringSingleConformation) {
  std::vector<dock::Conformation> confs(1);
  confs[0].coords = {{0, 0, 0}};
  confs[0].feb = -5.0;
  EXPECT_EQ(dock::cluster_conformations(confs), 1);
  EXPECT_EQ(confs[0].cluster, 0);
}

}  // namespace
}  // namespace scidock
