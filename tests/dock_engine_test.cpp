// Tests for the docking engines: conformations, local search, AD4 LGA,
// Vina MC, clustering, and docking-log round trips.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "dock/autodock4.hpp"
#include "dock/cluster.hpp"
#include "dock/conformation.hpp"
#include "dock/dlg.hpp"
#include "dock/energy.hpp"
#include "dock/vina.hpp"
#include "mol/prepare.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace scidock::dock {
namespace {

using mol::Vec3;

data::GeneratorOptions tiny() {
  data::GeneratorOptions o;
  o.min_residues = 10;
  o.max_residues = 14;
  o.min_ligand_atoms = 8;
  o.max_ligand_atoms = 12;
  o.hg_fraction = 0.0;
  return o;
}

struct Fixture {
  mol::PreparedReceptor receptor;
  mol::PreparedLigand ligand;
  GridBox box;
};

Fixture make_fixture() {
  const auto opts = tiny();
  mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1AIM", opts));
  mol::PreparedLigand lig = mol::prepare_ligand(data::make_ligand("042", opts));
  GridBox box = GridBox::around(rec.molecule.center(), 9.0, 0.75);
  return Fixture{std::move(rec), std::move(lig), box};
}

// --------------------------------------------------------- conformation

TEST(DockPose, RandomPlacesRootInBox) {
  Rng rng(3);
  const GridBox box = GridBox::around({5, 5, 5}, 8.0, 0.5);
  const Vec3 ref_center{100, 100, 100};
  for (int i = 0; i < 50; ++i) {
    const DockPose pose = DockPose::random(box, ref_center, 3, rng);
    EXPECT_TRUE(box.contains(ref_center + pose.rigid.translation));
    EXPECT_EQ(pose.torsions.size(), 3u);
    EXPECT_NEAR(pose.rigid.rotation.norm(), 1.0, 1e-9);
  }
}

TEST(DockPose, MutateChangesEverything) {
  Rng rng(3);
  DockPose pose = DockPose::random(GridBox{}, {0, 0, 0}, 2, rng);
  const DockPose before = pose;
  pose.mutate(1.0, 0.5, 0.5, rng);
  EXPECT_NE(before.rigid.translation.x, pose.rigid.translation.x);
  EXPECT_NE(before.torsions[0], pose.torsions[0]);
}

TEST(DockPose, MutateOneChangesOneGene) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    DockPose pose = DockPose::random(GridBox{}, {0, 0, 0}, 4, rng);
    const DockPose before = pose;
    pose.mutate_one(1.0, 0.5, 0.5, rng);
    int changed = 0;
    if (mol::distance(before.rigid.translation, pose.rigid.translation) > 1e-12) ++changed;
    if (std::abs(before.rigid.rotation.w - pose.rigid.rotation.w) > 1e-12 ||
        std::abs(before.rigid.rotation.x - pose.rigid.rotation.x) > 1e-12) ++changed;
    for (std::size_t t = 0; t < 4; ++t) {
      if (before.torsions[t] != pose.torsions[t]) ++changed;
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(DockPose, CrossoverMixesParents) {
  Rng rng(9);
  DockPose a = DockPose::random(GridBox{}, {0, 0, 0}, 6, rng);
  DockPose b = DockPose::random(GridBox{}, {0, 0, 0}, 6, rng);
  const DockPose child = a.crossover(b, rng);
  for (std::size_t t = 0; t < 6; ++t) {
    EXPECT_TRUE(child.torsions[t] == a.torsions[t] ||
                child.torsions[t] == b.torsions[t]);
  }
}

TEST(SolisWets, MinimisesQuadraticBowl) {
  // Objective: squared distance of the translation from a target point.
  const Vec3 target{3.0, -2.0, 1.0};
  auto energy = [&target](const DockPose& p) {
    return mol::distance_sq(p.rigid.translation, target);
  };
  Rng rng(5);
  DockPose start;
  start.rigid.translation = {0, 0, 0};
  double best = 0.0;
  const DockPose out = solis_wets(start, energy, rng, 2000, best, 2.0, 1e-6);
  EXPECT_LT(best, 0.05);
  EXPECT_LT(mol::distance(out.rigid.translation, target), 0.3);
}

// --------------------------------------------------------- energy model

TEST(EnergyModels, EvaluationCountsTracked) {
  const Fixture fx = make_fixture();
  VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  Rng rng(2);
  const DockPose pose = DockPose::random(fx.box, model.reference_center(),
                                         fx.ligand.torsions.torsion_count(), rng);
  EXPECT_EQ(model.evaluations(), 0);
  model(pose);
  model(pose);
  EXPECT_EQ(model.evaluations(), 2);
}

TEST(EnergyModels, VinaOutOfBoxPenalised) {
  const Fixture fx = make_fixture();
  VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  DockPose inside;
  inside.rigid.translation = fx.box.center - model.reference_center();
  inside.torsions.assign(
      static_cast<std::size_t>(fx.ligand.torsions.torsion_count()), 0.0);
  DockPose outside = inside;
  outside.rigid.translation += Vec3{500, 0, 0};
  EXPECT_GT(model(outside), model(inside));
}

TEST(EnergyModels, Ad4FebAddsTorsionPenalty) {
  const Fixture fx = make_fixture();
  GridMapCalculator calc(fx.receptor.molecule);
  mol::Molecule lig = fx.ligand.molecule;
  lig.perceive();
  const GridMapSet maps = calc.calculate(fx.box, lig.ad_types_present());
  Ad4EnergyModel model(maps, fx.ligand);
  const double inter = -5.0;
  EXPECT_GT(model.feb(inter), inter);  // penalty is positive
}

// -------------------------------------------------------------- engines

TEST(Autodock4Engine, ProducesRankedConformations) {
  const Fixture fx = make_fixture();
  DockingParameterFile params;
  params.ga_runs = 3;
  params.ga_pop_size = 16;
  params.ga_num_evals = 800;
  params.ga_num_generations = 25;
  params.sw_max_its = 25;
  Autodock4Engine engine(params);
  Rng rng(77);
  const DockingResult result = engine.dock(fx.receptor, fx.ligand, fx.box, rng);
  ASSERT_EQ(result.conformations.size(), 3u);
  EXPECT_EQ(result.engine_name, "AutoDock4");
  EXPECT_GT(result.energy_evaluations, 500);
  // Ranked best-first.
  for (std::size_t i = 1; i < result.conformations.size(); ++i) {
    EXPECT_LE(result.conformations[i - 1].feb, result.conformations[i].feb);
  }
  // Conformations hold full coordinate sets.
  EXPECT_EQ(result.best().coords.size(),
            static_cast<std::size_t>(fx.ligand.molecule.atom_count()));
}

TEST(Autodock4Engine, DeterministicGivenSeed) {
  const Fixture fx = make_fixture();
  DockingParameterFile params;
  params.ga_runs = 1;
  params.ga_pop_size = 10;
  params.ga_num_evals = 300;
  params.ga_num_generations = 10;
  params.sw_max_its = 10;
  Autodock4Engine engine(params);
  Rng r1(5), r2(5);
  const DockingResult a = engine.dock(fx.receptor, fx.ligand, fx.box, r1);
  const DockingResult b = engine.dock(fx.receptor, fx.ligand, fx.box, r2);
  EXPECT_DOUBLE_EQ(a.best().feb, b.best().feb);
  EXPECT_DOUBLE_EQ(a.best().rmsd_from_input, b.best().rmsd_from_input);
}

TEST(Autodock4Engine, RejectsUnparameterisedInput) {
  data::GeneratorOptions opts = tiny();
  opts.hg_fraction = 1.0;
  mol::ReceptorPrepareOptions prep_opts;
  prep_opts.reject_unparameterised_atoms = false;  // let Hg through
  mol::PreparedReceptor rec = mol::prepare_receptor(
      data::make_receptor("1AIM", opts), prep_opts);
  mol::PreparedLigand lig = mol::prepare_ligand(data::make_ligand("042", opts));
  Autodock4Engine engine;
  Rng rng(1);
  EXPECT_THROW(engine.dock(rec, lig, GridBox::around({0, 0, 0}, 8.0, 1.0), rng),
               Error);
}

TEST(VinaEngine, ProducesModesWithinEnergyRange) {
  const Fixture fx = make_fixture();
  VinaConfig cfg;
  cfg.exhaustiveness = 4;
  cfg.num_modes = 3;
  cfg.energy_range = 5.0;
  VinaEngine engine(cfg);
  engine.steps_per_chain = 15;
  Rng rng(8);
  const DockingResult result = engine.dock(fx.receptor, fx.ligand, fx.box, rng);
  ASSERT_FALSE(result.empty());
  EXPECT_LE(result.conformations.size(), 3u);
  const double best = result.best().feb;
  for (const Conformation& c : result.conformations) {
    EXPECT_LE(c.feb, best + 5.0 + 1e-9);
  }
  EXPECT_EQ(result.engine_name, "Vina");
}

TEST(VinaEngine, ThreadedAndSerialAgree) {
  const Fixture fx = make_fixture();
  VinaConfig cfg;
  cfg.exhaustiveness = 3;
  VinaEngine serial(cfg);
  serial.steps_per_chain = 10;
  serial.threads = 1;
  VinaEngine threaded(cfg);
  threaded.steps_per_chain = 10;
  threaded.threads = 3;
  Rng r1(4), r2(4);
  const DockingResult a = serial.dock(fx.receptor, fx.ligand, fx.box, r1);
  const DockingResult b = threaded.dock(fx.receptor, fx.ligand, fx.box, r2);
  ASSERT_EQ(a.conformations.size(), b.conformations.size());
  for (std::size_t i = 0; i < a.conformations.size(); ++i) {
    EXPECT_NEAR(a.conformations[i].feb, b.conformations[i].feb, 1e-9);
  }
}

TEST(VinaEngine, FindsBetterPosesWithMoreEffort) {
  const Fixture fx = make_fixture();
  VinaConfig lo_cfg;
  lo_cfg.exhaustiveness = 1;
  VinaEngine lo(lo_cfg);
  lo.steps_per_chain = 2;
  VinaConfig hi_cfg;
  hi_cfg.exhaustiveness = 6;
  VinaEngine hi(hi_cfg);
  hi.steps_per_chain = 30;
  Rng r1(10), r2(10);
  const double feb_lo = lo.dock(fx.receptor, fx.ligand, fx.box, r1).best().feb;
  const double feb_hi = hi.dock(fx.receptor, fx.ligand, fx.box, r2).best().feb;
  EXPECT_LE(feb_hi, feb_lo + 1e-9);
}

TEST(Redock, RefinesAPreviousPose) {
  const Fixture fx = make_fixture();
  VinaConfig cfg;
  cfg.exhaustiveness = 2;
  VinaEngine vina(cfg);
  vina.steps_per_chain = 10;
  Rng rng(21);
  const DockingResult first = vina.dock(fx.receptor, fx.ligand, fx.box, rng);
  ASSERT_FALSE(first.empty());

  Rng rng2(22);
  const DockingResult refined =
      redock(fx.receptor, fx.ligand, first.best(), rng2);
  ASSERT_EQ(refined.conformations.size(), 1u);
  EXPECT_EQ(refined.engine_name, "Vina-redock");
  // The refined pose stays near the original (tight box) ...
  EXPECT_LT(refined.best().rmsd_from_input, 12.0);
  // ... and scores favourably after intensified local search.
  EXPECT_LT(refined.best().feb, 0.5);
  EXPECT_GT(refined.energy_evaluations, 50);
}

TEST(Redock, RejectsMismatchedPose) {
  const Fixture fx = make_fixture();
  Conformation wrong;
  wrong.coords = {{0, 0, 0}};
  Rng rng(1);
  EXPECT_THROW(redock(fx.receptor, fx.ligand, wrong, rng), Error);
}

// ------------------------------------------------------------ clustering

TEST(Clustering, GroupsByRmsd) {
  std::vector<Conformation> confs(4);
  confs[0].coords = {{0, 0, 0}};
  confs[0].feb = -5;
  confs[1].coords = {{0.5, 0, 0}};  // near conf 0
  confs[1].feb = -4;
  confs[2].coords = {{10, 0, 0}};   // far
  confs[2].feb = -3;
  confs[3].coords = {{10.4, 0, 0}}; // near conf 2
  confs[3].feb = -2;
  const int n = cluster_conformations(confs, 2.0);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(confs[0].cluster, 0);
  EXPECT_EQ(confs[1].cluster, 0);
  EXPECT_EQ(confs[2].cluster, 1);
  EXPECT_EQ(confs[3].cluster, 1);
}

TEST(Clustering, SortsByEnergy) {
  std::vector<Conformation> confs(3);
  for (int i = 0; i < 3; ++i) {
    confs[static_cast<std::size_t>(i)].coords = {{i * 20.0, 0, 0}};
    confs[static_cast<std::size_t>(i)].feb = static_cast<double>(2 - i);
  }
  cluster_conformations(confs, 1.0);
  EXPECT_LT(confs[0].feb, confs[1].feb);
  EXPECT_LT(confs[1].feb, confs[2].feb);
}

// ------------------------------------------------------------------ dlg

DockingResult sample_result() {
  DockingResult r;
  r.receptor_name = "2HHN";
  r.ligand_name = "0E6";
  r.engine_name = "AutoDock4";
  r.energy_evaluations = 4242;
  for (int i = 0; i < 3; ++i) {
    Conformation c;
    c.coords = {{i * 1.0, 0, 0}};
    c.feb = -7.5 + i;
    c.intermolecular = c.feb - 0.5;
    c.intramolecular = -0.2;
    c.rmsd_from_input = 50.0 + i;
    c.run = i;
    r.conformations.push_back(c);
  }
  cluster_conformations(r.conformations, 2.0);
  return r;
}

TEST(Dlg, WriteAndParseSummary) {
  const DockingResult r = sample_result();
  const std::string dlg = write_dlg(r);
  EXPECT_NE(dlg.find("RMSD TABLE"), std::string::npos);
  EXPECT_NE(dlg.find("CLUSTERING HISTOGRAM"), std::string::npos);
  const DlgSummary s = parse_docking_log(dlg);
  EXPECT_EQ(s.receptor, "2HHN");
  EXPECT_EQ(s.ligand, "0E6");
  EXPECT_EQ(s.engine, "AutoDock4");
  EXPECT_NEAR(s.best_feb, -7.5, 0.01);
  EXPECT_NEAR(s.best_rmsd, 50.0, 0.01);
  EXPECT_NEAR(s.mean_feb, r.mean_feb(), 0.01);
  EXPECT_EQ(s.conformations, 3);
}

TEST(Dlg, VinaLogRoundTrip) {
  DockingResult r = sample_result();
  r.engine_name = "Vina";
  const std::string log = write_vina_log(r);
  EXPECT_NE(log.find("affinity"), std::string::npos);
  const DlgSummary s = parse_docking_log(log);
  EXPECT_EQ(s.engine, "Vina");
  EXPECT_NEAR(s.best_feb, -7.5, 0.01);
}

TEST(Dlg, ParseRejectsForeignText) {
  EXPECT_THROW(parse_docking_log("hello world\n"), ParseError);
}

TEST(DockingResult, FavorablePredicate) {
  DockingResult r = sample_result();
  EXPECT_TRUE(r.favorable());
  for (Conformation& c : r.conformations) c.feb = std::abs(c.feb);
  EXPECT_FALSE(r.favorable());
  DockingResult empty;
  EXPECT_FALSE(empty.favorable());
  EXPECT_THROW(empty.best(), Error);
}

}  // namespace
}  // namespace scidock::dock
