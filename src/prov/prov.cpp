#include "prov/prov.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::prov {

using sql::Value;

std::string workflow_id_sql(std::string_view tag) {
  return strformat(
      "SELECT wkfid FROM hworkflow WHERE tag = '%s' "
      "ORDER BY wkfid DESC LIMIT 1",
      std::string(tag).c_str());
}

// The `-- reconciles:` comment annotations below declare which metrics
// series each query is the provenance ground truth for; the SQL lexer
// strips line comments, so execution is unaffected, while scidock-lint's
// SQL008 validates every named series against obs::known_metric_names().

std::string activation_count_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_started_total\n"
      "SELECT count(*) FROM hactivation WHERE wkfid = %lld",
      wkfid);
}

std::string activations_by_status_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_finished_total,\n"
      "-- reconciles: scidock_executor_activations_failed_total,\n"
      "-- reconciles: scidock_executor_activations_aborted_total\n"
      "SELECT status, count(*) FROM hactivation WHERE wkfid = %lld "
      "GROUP BY status ORDER BY status",
      wkfid);
}

std::string retried_activation_count_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_retried_total\n"
      "SELECT count(*) FROM hactivation "
      "WHERE wkfid = %lld AND attempts > 1",
      wkfid);
}

std::string finished_activation_count_sql(long long wkfid,
                                          std::string_view activity_tag) {
  return strformat(
      "-- reconciles: scidock_cache_gridmaps_hits_total,\n"
      "-- reconciles: scidock_cache_gridmaps_misses_total,\n"
      "-- reconciles: scidock_cache_gridmaps_inflight_waits_total\n"
      "SELECT count(*) FROM hactivity a, hactivation t "
      "WHERE t.actid = a.actid AND a.wkfid = %lld "
      "AND a.tag = '%s' AND t.status = '%s'",
      wkfid, std::string(activity_tag).c_str(),
      std::string(kStatusFinished).c_str());
}

ProvenanceStore::ProvenanceStore() {
  db_.create_table("hmachine", {"vmid", "type", "cores", "speed_factor"});
  db_.create_table("hworkflow",
                   {"wkfid", "tag", "description", "expdir", "starttime", "endtime"});
  db_.create_table("hactivity", {"actid", "wkfid", "tag", "activation", "op"});
  db_.create_table("hactivation",
                   {"taskid", "actid", "wkfid", "starttime", "endtime",
                    "status", "vmid", "exitcode", "attempts", "workload"});
  db_.create_table("hfile",
                   {"fileid", "wkfid", "actid", "taskid", "fname", "fsize", "fdir"});
  db_.create_table("hvalue",
                   {"valueid", "taskid", "key", "value_num", "value_text"});
}

void ProvenanceStore::set_metrics(obs::MetricsRegistry* registry) {
  MutexLock lock(mutex_);
  if (registry == nullptr) {
    rates_ = RateCounters{};
    return;
  }
  rates_.workflow_rows = &registry->counter("scidock_prov_workflow_rows_total",
                                            "hworkflow rows recorded");
  rates_.activity_rows = &registry->counter("scidock_prov_activity_rows_total",
                                            "hactivity rows recorded");
  rates_.activation_rows = &registry->counter(
      "scidock_prov_activation_rows_total", "hactivation rows recorded");
  rates_.machine_rows = &registry->counter("scidock_prov_machine_rows_total",
                                           "hmachine rows recorded");
  rates_.file_rows =
      &registry->counter("scidock_prov_file_rows_total", "hfile rows recorded");
  rates_.value_rows = &registry->counter("scidock_prov_value_rows_total",
                                         "hvalue rows recorded");
  rates_.queries = &registry->counter("scidock_prov_queries_total",
                                      "SQL queries served by query()");
}

sql::ResultSet ProvenanceStore::query(std::string_view sql_text) {
  MutexLock lock(mutex_);
  if (rates_.queries != nullptr) rates_.queries->inc();
  sql::Engine engine(db_);
  return engine.execute(sql_text);
}

long long ProvenanceStore::begin_workflow(std::string_view tag,
                                          std::string_view description,
                                          std::string_view expdir, double now) {
  MutexLock lock(mutex_);
  const long long id = next_wkfid_++;
  if (rates_.workflow_rows != nullptr) rates_.workflow_rows->inc();
  db_.table("hworkflow")
      .insert({Value(id), Value(std::string(tag)), Value(std::string(description)),
               Value(std::string(expdir)), Value(now), Value()});
  return id;
}

void ProvenanceStore::end_workflow(long long wkfid, double now) {
  MutexLock lock(mutex_);
  sql::Table& t = db_.table("hworkflow");
  const auto id_col = static_cast<std::size_t>(t.column_index("wkfid"));
  const auto end_col = static_cast<std::size_t>(t.column_index("endtime"));
  for (auto& row : t.mutable_rows()) {
    if (row[id_col].as_int() == wkfid) {
      row[end_col] = Value(now);
      return;
    }
  }
  throw NotFoundError("workflow", std::to_string(wkfid));
}

long long ProvenanceStore::register_activity(long long wkfid, std::string_view tag,
                                             std::string_view activation_command,
                                             std::string_view op) {
  MutexLock lock(mutex_);
  const long long id = next_actid_++;
  if (rates_.activity_rows != nullptr) rates_.activity_rows->inc();
  db_.table("hactivity")
      .insert({Value(id), Value(wkfid), Value(std::string(tag)),
               Value(std::string(activation_command)), Value(std::string(op))});
  return id;
}

long long ProvenanceStore::begin_activation(long long actid, long long wkfid,
                                            double now, long long vmid,
                                            std::string_view workload) {
  MutexLock lock(mutex_);
  const long long id = next_taskid_++;
  if (rates_.activation_rows != nullptr) rates_.activation_rows->inc();
  db_.table("hactivation")
      .insert({Value(id), Value(actid), Value(wkfid), Value(now), Value(),
               Value(std::string(kStatusRunning)), Value(vmid), Value(0),
               Value(1), Value(std::string(workload))});
  return id;
}

void ProvenanceStore::end_activation(long long taskid, double now,
                                     std::string_view status, int exitcode,
                                     int attempts) {
  MutexLock lock(mutex_);
  sql::Table& t = db_.table("hactivation");
  const auto id_col = static_cast<std::size_t>(t.column_index("taskid"));
  for (auto& row : t.mutable_rows()) {
    if (row[id_col].as_int() == taskid) {
      row[static_cast<std::size_t>(t.column_index("endtime"))] = Value(now);
      row[static_cast<std::size_t>(t.column_index("status"))] = Value(std::string(status));
      row[static_cast<std::size_t>(t.column_index("exitcode"))] = Value(exitcode);
      row[static_cast<std::size_t>(t.column_index("attempts"))] = Value(attempts);
      return;
    }
  }
  throw NotFoundError("activation", std::to_string(taskid));
}

void ProvenanceStore::record_machine(long long vmid, std::string_view type,
                                     int cores, double speed_factor) {
  MutexLock lock(mutex_);
  if (rates_.machine_rows != nullptr) rates_.machine_rows->inc();
  db_.table("hmachine")
      .insert({Value(vmid), Value(std::string(type)), Value(cores), Value(speed_factor)});
}

void ProvenanceStore::record_file(long long wkfid, long long actid,
                                  long long taskid, std::string_view fname,
                                  std::size_t fsize, std::string_view fdir) {
  MutexLock lock(mutex_);
  if (rates_.file_rows != nullptr) rates_.file_rows->inc();
  db_.table("hfile").insert({Value(next_fileid_++), Value(wkfid), Value(actid),
                             Value(taskid), Value(std::string(fname)),
                             Value(fsize), Value(std::string(fdir))});
}

std::string ProvenanceStore::export_prov_n() {
  MutexLock lock(mutex_);
  sql::Engine engine(db_);
  std::string out = "document\n  prefix scidock <urn:scidock:>\n\n";

  for (const sql::Row& row :
       engine.execute("SELECT wkfid, tag, starttime, endtime FROM hworkflow").rows) {
    out += strformat("  activity(scidock:workflow/%lld, [prov:label=\"%s\"])\n",
                     static_cast<long long>(row[0].as_int()),
                     row[1].as_string().c_str());
  }
  for (const sql::Row& row :
       engine.execute("SELECT vmid, type FROM hmachine").rows) {
    out += strformat("  agent(scidock:vm/%lld, [prov:type=\"%s\"])\n",
                     static_cast<long long>(row[0].as_int()),
                     row[1].as_string().c_str());
  }
  for (const sql::Row& row :
       engine
           .execute("SELECT t.taskid, a.tag, t.starttime, t.endtime, t.vmid, "
                    "t.status FROM hactivity a, hactivation t "
                    "WHERE a.actid = t.actid")
           .rows) {
    const long long taskid = row[0].as_int();
    out += strformat(
        "  activity(scidock:activation/%lld, [prov:label=\"%s\", "
        "scidock:status=\"%s\"])\n",
        taskid, row[1].as_string().c_str(), row[5].as_string().c_str());
    if (row[4].as_int() > 0) {
      out += strformat(
          "  wasAssociatedWith(scidock:activation/%lld, scidock:vm/%lld, -)\n",
          taskid, static_cast<long long>(row[4].as_int()));
    }
  }
  for (const sql::Row& row :
       engine.execute("SELECT fileid, fname, fdir, taskid FROM hfile").rows) {
    const long long fileid = row[0].as_int();
    out += strformat(
        "  entity(scidock:file/%lld, [prov:label=\"%s%s\"])\n", fileid,
        row[2].as_string().c_str(), row[1].as_string().c_str());
    out += strformat(
        "  wasGeneratedBy(scidock:file/%lld, scidock:activation/%lld, -)\n",
        fileid, static_cast<long long>(row[3].as_int()));
  }
  out += "endDocument\n";
  return out;
}

void ProvenanceStore::record_value(long long taskid, std::string_view key,
                                   double value_num, std::string_view value_text) {
  MutexLock lock(mutex_);
  if (rates_.value_rows != nullptr) rates_.value_rows->inc();
  db_.table("hvalue").insert({Value(next_valueid_++), Value(taskid),
                              Value(std::string(key)), Value(value_num),
                              Value(std::string(value_text))});
}

}  // namespace scidock::prov
