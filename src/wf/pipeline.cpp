#include "wf/pipeline.hpp"

#include "util/error.hpp"

namespace scidock::wf {

void ActivationContext::emit_file(const std::string& path,
                                  std::string content) const {
  SCIDOCK_ASSERT(fs != nullptr);
  const std::size_t size = content.size();
  fs->write(path, std::move(content), now, "");
  if (prov != nullptr) {
    const auto [dir, name] = vfs::split_path(path);
    prov->record_file(wkfid, actid, taskid, name, size, dir);
  }
}

void ActivationContext::emit_value(std::string_view key, double num,
                                   std::string_view text) const {
  if (prov != nullptr) prov->record_value(taskid, key, num, text);
}

void Pipeline::add_stage(Stage stage) {
  SCIDOCK_REQUIRE(stage_index(stage.tag) < 0,
                  "duplicate pipeline stage '" + stage.tag + "'");
  stages_.push_back(std::move(stage));
}

const Stage& Pipeline::stage(std::string_view tag) const {
  const int idx = stage_index(tag);
  if (idx < 0) throw NotFoundError("pipeline stage", tag);
  return stages_[static_cast<std::size_t>(idx)];
}

int Pipeline::stage_index(std::string_view tag) const {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].tag == tag) return static_cast<int>(i);
  }
  return -1;
}

std::string Pipeline::next_stage(std::string_view tag, const Tuple& tuple) const {
  const int idx = stage_index(tag);
  SCIDOCK_REQUIRE(idx >= 0, "unknown stage '" + std::string(tag) + "'");
  const Stage& st = stages_[static_cast<std::size_t>(idx)];
  if (st.route) {
    const std::string routed = st.route(tuple);
    if (!routed.empty()) return routed;  // explicit target or kEndOfPipeline
  }
  if (static_cast<std::size_t>(idx) + 1 < stages_.size()) {
    return stages_[static_cast<std::size_t>(idx) + 1].tag;
  }
  return kEndOfPipeline;
}

std::vector<std::string> Pipeline::chain_for(const Tuple& tuple) const {
  SCIDOCK_REQUIRE(!stages_.empty(), "empty pipeline");
  std::vector<std::string> chain;
  std::string current = stages_.front().tag;
  while (current != kEndOfPipeline) {
    SCIDOCK_REQUIRE(chain.size() <= stages_.size(),
                    "pipeline routing loops for this tuple");
    chain.push_back(current);
    current = next_stage(current, tuple);
  }
  return chain;
}

}  // namespace scidock::wf
