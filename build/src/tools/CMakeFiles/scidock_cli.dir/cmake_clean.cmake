file(REMOVE_RECURSE
  "CMakeFiles/scidock_cli.dir/scidock_cli.cpp.o"
  "CMakeFiles/scidock_cli.dir/scidock_cli.cpp.o.d"
  "scidock_cli"
  "scidock_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
