// Figure 6: execution time per activity at 16 cores — the docking stage
// dominates and SciCumulus adapts its scheduling accordingly.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/scidock.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: execution time per activity (16 cores)",
                      "Figure 6");

  const int pairs = bench::env_int("SCIDOCK_FIG6_PAIRS", 1000);
  for (const auto mode : {core::EngineMode::ForceAd4, core::EngineMode::ForceVina}) {
    core::ScidockOptions options;
    options.engine_mode = mode;
    core::Experiment exp = core::make_experiment(
        data::table2_receptors(), data::table2_ligands(),
        static_cast<std::size_t>(pairs), options);
    const wf::SimReport report = core::run_simulated(exp, 16);

    std::printf("\n--- SciDock with %s (%d pairs) ---\n",
                mode == core::EngineMode::ForceAd4 ? "AD4" : "Vina", pairs);
    std::printf("%-14s %10s %10s %10s %12s\n", "activity", "mean (s)",
                "max (s)", "count", "total (s)");
    double peak = 0.0;
    for (const auto& [tag, stats] : report.per_activity_seconds) {
      peak = std::max(peak, stats.sum());
    }
    for (const auto& [tag, stats] : report.per_activity_seconds) {
      std::printf("%-14s %10.1f %10.1f %10zu %12.0f  ", tag.c_str(),
                  stats.mean(), stats.max(), stats.count(), stats.sum());
      const int bar = static_cast<int>(stats.sum() / peak * 40.0);
      for (int i = 0; i < bar; ++i) std::printf("#");
      std::printf("\n");
    }
  }
  std::printf("\nshape check: the final docking activity (8a/8b) is the most\n"
              "computing-intensive stage of the workflow, as in Figure 6.\n");
  return 0;
}
