
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mol/atom_typing.cpp" "src/mol/CMakeFiles/scidock_mol.dir/atom_typing.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/atom_typing.cpp.o.d"
  "/root/repo/src/mol/charges.cpp" "src/mol/CMakeFiles/scidock_mol.dir/charges.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/charges.cpp.o.d"
  "/root/repo/src/mol/elements.cpp" "src/mol/CMakeFiles/scidock_mol.dir/elements.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/elements.cpp.o.d"
  "/root/repo/src/mol/geometry.cpp" "src/mol/CMakeFiles/scidock_mol.dir/geometry.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/geometry.cpp.o.d"
  "/root/repo/src/mol/io_mol2.cpp" "src/mol/CMakeFiles/scidock_mol.dir/io_mol2.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/io_mol2.cpp.o.d"
  "/root/repo/src/mol/io_pdb.cpp" "src/mol/CMakeFiles/scidock_mol.dir/io_pdb.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/io_pdb.cpp.o.d"
  "/root/repo/src/mol/io_pdbqt.cpp" "src/mol/CMakeFiles/scidock_mol.dir/io_pdbqt.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/io_pdbqt.cpp.o.d"
  "/root/repo/src/mol/io_sdf.cpp" "src/mol/CMakeFiles/scidock_mol.dir/io_sdf.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/io_sdf.cpp.o.d"
  "/root/repo/src/mol/molecule.cpp" "src/mol/CMakeFiles/scidock_mol.dir/molecule.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/molecule.cpp.o.d"
  "/root/repo/src/mol/prepare.cpp" "src/mol/CMakeFiles/scidock_mol.dir/prepare.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/prepare.cpp.o.d"
  "/root/repo/src/mol/torsion.cpp" "src/mol/CMakeFiles/scidock_mol.dir/torsion.cpp.o" "gcc" "src/mol/CMakeFiles/scidock_mol.dir/torsion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
