#pragma once

/// \file racer_lint.hpp
/// Bridge from the happens-before race analyzer (util/racer) into the
/// scidock-lint diagnostic machinery: each race report becomes a
/// Diagnostic with a stable RC rule ID (RC001..RC004, see
/// lint::rule_catalog()), so CI gates, the CLI's --racer-report and the
/// fixture tests all speak the same format as the static rules.

#include "lint/diagnostics.hpp"

namespace scidock::lint {

/// Convert every report the analyzer has accumulated so far into a
/// Report (empty when racer is compiled out or found nothing). The
/// multi-line both-sites/missing-edge evidence is appended to each
/// message so a formatted diagnostic is self-contained.
Report racer_report();

}  // namespace scidock::lint
