#pragma once

/// \file conformation.hpp
/// The search-space point both engines optimise: a rigid-body pose plus
/// one angle per rotatable bond, and the mutation/sampling moves on it.

#include <vector>

#include "dock/grid.hpp"
#include "mol/geometry.hpp"
#include "mol/torsion.hpp"
#include "util/rng.hpp"

namespace scidock::dock {

struct DockPose {
  mol::Pose rigid;
  std::vector<double> torsions;  ///< radians, one per rotatable bond

  /// Uniformly random pose: root centre placed uniformly in the box,
  /// orientation uniform on SO(3), torsions uniform in (-pi, pi].
  /// `reference_center` is the root-fragment centroid of the reference
  /// conformation (the point the rigid translation moves).
  static DockPose random(const GridBox& box, const mol::Vec3& reference_center,
                         int torsion_count, Rng& rng);

  /// Gaussian perturbation of every degree of freedom.
  void mutate(double translate_sigma, double rotate_sigma,
              double torsion_sigma, Rng& rng);

  /// Perturb exactly one randomly chosen degree of freedom (the classic
  /// Vina Monte-Carlo move).
  void mutate_one(double translate_sigma, double rotate_sigma,
                  double torsion_sigma, Rng& rng);

  /// Uniform crossover with `other` (AD4's genetic operator): each gene
  /// (translation axis, orientation, each torsion) picked from one parent.
  DockPose crossover(const DockPose& other, Rng& rng) const;
};

/// Solis-Wets style local search: adaptive-step hill climbing over the
/// pose. `energy` maps a DockPose to a scalar; lower is better. Returns
/// the improved pose and writes its energy to `out_energy`.
template <typename EnergyFn>
DockPose solis_wets(DockPose pose, const EnergyFn& energy, Rng& rng,
                    int max_iterations, double& out_energy,
                    double initial_rho = 1.0, double min_rho = 0.01) {
  double best = energy(pose);
  double rho = initial_rho;
  int successes = 0;
  int failures = 0;
  for (int it = 0; it < max_iterations && rho > min_rho; ++it) {
    DockPose trial = pose;
    trial.mutate(0.3 * rho, 0.25 * rho, 0.4 * rho, rng);
    const double e = energy(trial);
    if (e < best) {
      best = e;
      pose = std::move(trial);
      ++successes;
      failures = 0;
    } else {
      ++failures;
      successes = 0;
    }
    // Classic Solis-Wets step adaptation thresholds.
    if (successes >= 4) { rho *= 2.0; successes = 0; }
    if (failures >= 4) { rho *= 0.5; failures = 0; }
  }
  out_energy = best;
  return pose;
}

}  // namespace scidock::dock
