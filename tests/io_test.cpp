// Round-trip and robustness tests for the four molecular file formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "data/generator.hpp"
#include "dock/dlg.hpp"
#include "mol/charges.hpp"
#include "mol/io_mol2.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/io_sdf.hpp"
#include "mol/prepare.hpp"
#include "util/error.hpp"

namespace scidock::mol {
namespace {

Molecule sample_ligand() { return data::make_ligand("042"); }
Molecule sample_receptor() {
  data::GeneratorOptions opts;
  opts.min_residues = 10;
  opts.max_residues = 16;
  return data::make_receptor("1AIM", opts);
}

void expect_same_structure(const Molecule& a, const Molecule& b,
                           double tol = 1e-3) {
  ASSERT_EQ(a.atom_count(), b.atom_count());
  for (int i = 0; i < a.atom_count(); ++i) {
    EXPECT_EQ(a.atom(i).element, b.atom(i).element) << "atom " << i;
    EXPECT_NEAR(a.atom(i).pos.x, b.atom(i).pos.x, tol);
    EXPECT_NEAR(a.atom(i).pos.y, b.atom(i).pos.y, tol);
    EXPECT_NEAR(a.atom(i).pos.z, b.atom(i).pos.z, tol);
  }
}

// ----------------------------------------------------------------- PDB

TEST(PdbIo, RoundTripPreservesAtoms) {
  const Molecule m = sample_receptor();
  const Molecule back = read_pdb(write_pdb(m), m.name());
  expect_same_structure(m, back);
  EXPECT_EQ(back.name(), m.name());
}

TEST(PdbIo, PreservesResidueMetadata) {
  const Molecule m = sample_receptor();
  const Molecule back = read_pdb(write_pdb(m));
  for (int i = 0; i < m.atom_count(); ++i) {
    EXPECT_EQ(m.atom(i).residue_name, back.atom(i).residue_name);
    EXPECT_EQ(m.atom(i).residue_seq, back.atom(i).residue_seq);
    EXPECT_EQ(m.atom(i).hetero, back.atom(i).hetero);
  }
}

TEST(PdbIo, ParsesMinimalRecord) {
  const Molecule m = read_pdb(
      "ATOM      1  CA  CYS A   1      11.000  22.000  33.000  1.00  0.00"
      "           C\nEND\n");
  ASSERT_EQ(m.atom_count(), 1);
  EXPECT_EQ(m.atom(0).element, Element::C);
  EXPECT_NEAR(m.atom(0).pos.y, 22.0, 1e-9);
  EXPECT_EQ(m.atom(0).residue_name, "CYS");
}

TEST(PdbIo, RejectsEmptyAndTruncated) {
  EXPECT_THROW(read_pdb("REMARK nothing here\n"), ParseError);
  EXPECT_THROW(read_pdb("ATOM      1  CA  CYS A   1      11.0\n"), ParseError);
}

TEST(PdbIo, HetatmElementFromName) {
  const Molecule m = read_pdb(
      "HETATM    1 HG    HG A   9      1.000   2.000   3.000  1.00  0.00\n",
      "", false);
  EXPECT_EQ(m.atom(0).element, Element::Hg);
  EXPECT_TRUE(m.atom(0).hetero);
}

// ----------------------------------------------------------------- SDF

TEST(SdfIo, RoundTripPreservesAtomsAndBonds) {
  const Molecule m = sample_ligand();
  const Molecule back = read_sdf(write_sdf(m), m.name());
  expect_same_structure(m, back, 1e-3);
  EXPECT_EQ(back.bond_count(), m.bond_count());
}

TEST(SdfIo, PreservesBondOrders) {
  const Molecule m = sample_ligand();
  const Molecule back = read_sdf(write_sdf(m));
  for (int i = 0; i < m.bond_count(); ++i) {
    EXPECT_EQ(m.bonds()[static_cast<std::size_t>(i)].order,
              back.bonds()[static_cast<std::size_t>(i)].order);
  }
}

TEST(SdfIo, MultiRecordDocuments) {
  const std::string doc = write_sdf(data::make_ligand("042")) +
                          write_sdf(data::make_ligand("074"));
  const auto all = read_sdf_multi(doc);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name(), "042");
  EXPECT_EQ(all[1].name(), "074");
}

TEST(SdfIo, RejectsGarbage) {
  EXPECT_THROW(read_sdf(""), ParseError);
  EXPECT_THROW(read_sdf("x\ny\nz\nnot-a-counts-line\n$$$$\n"), ParseError);
}

TEST(SdfIo, RejectsOutOfRangeBondIndices) {
  const std::string bad =
      "m\n\n\n  2  1  0  0  0  0  0  0  0  0999 V2000\n"
      "    0.0000    0.0000    0.0000 C   0  0\n"
      "    1.5000    0.0000    0.0000 C   0  0\n"
      "  1  9  1  0\nM  END\n$$$$\n";
  EXPECT_THROW(read_sdf(bad), ParseError);
}

// ---------------------------------------------------------------- MOL2

TEST(Mol2Io, RoundTripPreservesStructure) {
  Molecule m = sample_ligand();
  const Molecule back = read_mol2(write_mol2(m), m.name());
  expect_same_structure(m, back, 1e-3);
  EXPECT_EQ(back.bond_count(), m.bond_count());
}

TEST(Mol2Io, PreservesCharges) {
  Molecule m = sample_ligand();
  assign_gasteiger_charges(m);
  const Molecule back = read_mol2(write_mol2(m));
  for (int i = 0; i < m.atom_count(); ++i) {
    EXPECT_NEAR(m.atom(i).partial_charge, back.atom(i).partial_charge, 1e-3);
  }
}

TEST(Mol2Io, ParsesSybylTypes) {
  const std::string text =
      "@<TRIPOS>MOLECULE\nmini\n 2 1 1 0 0\nSMALL\nNONE\n\n"
      "@<TRIPOS>ATOM\n"
      "1 C1 0.0 0.0 0.0 C.ar 1 LIG 0.1\n"
      "2 N1 1.4 0.0 0.0 N.3 1 LIG -0.1\n"
      "@<TRIPOS>BOND\n1 1 2 ar\n";
  const Molecule m = read_mol2(text);
  ASSERT_EQ(m.atom_count(), 2);
  EXPECT_EQ(m.atom(0).element, Element::C);
  EXPECT_EQ(m.atom(1).element, Element::N);
  EXPECT_EQ(m.bonds()[0].order, BondOrder::Aromatic);
  EXPECT_EQ(m.name(), "mini");
}

TEST(Mol2Io, RejectsMissingAtomSection) {
  EXPECT_THROW(read_mol2("@<TRIPOS>MOLECULE\nx\n1 0\n"), ParseError);
}

// --------------------------------------------------------------- PDBQT

TEST(PdbqtIo, RigidRoundTrip) {
  Molecule m = sample_receptor();
  const PreparedReceptor prep = prepare_receptor(m);
  const PdbqtModel model = read_pdbqt(prep.pdbqt, m.name());
  EXPECT_FALSE(model.is_ligand);
  EXPECT_EQ(model.molecule.atom_count(), prep.molecule.atom_count());
  for (int i = 0; i < model.molecule.atom_count(); ++i) {
    EXPECT_EQ(model.molecule.atom(i).ad_type, prep.molecule.atom(i).ad_type);
    EXPECT_NEAR(model.molecule.atom(i).partial_charge,
                prep.molecule.atom(i).partial_charge, 1e-3);
  }
}

TEST(PdbqtIo, LigandTorsionTreeRoundTrip) {
  const PreparedLigand prep = prepare_ligand(sample_ligand());
  const PdbqtModel model = read_pdbqt(prep.pdbqt);
  EXPECT_TRUE(model.is_ligand);
  EXPECT_EQ(model.torsions.torsion_count(), prep.torsions.torsion_count());
  EXPECT_EQ(model.torsdof, prep.torsions.torsion_count());
  EXPECT_EQ(model.torsions.root_atoms().size(), prep.torsions.root_atoms().size());
  // Branch moving-set sizes match (order may differ).
  std::multiset<std::size_t> a, b;
  for (const auto& br : prep.torsions.branches()) a.insert(br.moving_atoms.size());
  for (const auto& br : model.torsions.branches()) b.insert(br.moving_atoms.size());
  EXPECT_EQ(a, b);
}

TEST(PdbqtIo, LigandCoordinatesSurvive) {
  const PreparedLigand prep = prepare_ligand(sample_ligand());
  const PdbqtModel model = read_pdbqt(prep.pdbqt);
  // Atom order differs (branch emission); sort both coordinate sets and
  // compare within the PDBQT text precision (3 decimals).
  auto sorted = [](const Molecule& m) {
    std::vector<std::tuple<double, double, double>> pts;
    for (const Atom& atom : m.atoms()) {
      pts.emplace_back(atom.pos.x, atom.pos.y, atom.pos.z);
    }
    std::sort(pts.begin(), pts.end());
    return pts;
  };
  const auto a = sorted(prep.molecule);
  const auto b = sorted(model.molecule);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::get<0>(a[i]), std::get<0>(b[i]), 2e-3);
    EXPECT_NEAR(std::get<1>(a[i]), std::get<1>(b[i]), 2e-3);
    EXPECT_NEAR(std::get<2>(a[i]), std::get<2>(b[i]), 2e-3);
  }
}

TEST(PdbqtIo, RejectsUnbalancedBranches) {
  EXPECT_THROW(read_pdbqt("ROOT\n"
                          "ATOM      1  C1  LIG A   1       0.000   0.000"
                          "   0.000  1.00  0.00     0.000 C\n"
                          "ENDROOT\nBRANCH 1 2\n"),
               ParseError);
  EXPECT_THROW(read_pdbqt("ENDBRANCH 1 2\n"), ParseError);
}

TEST(PdbqtIo, RejectsUnknownType) {
  EXPECT_THROW(
      read_pdbqt("ATOM      1  C1  LIG A   1       0.000   0.000   0.000"
                 "  1.00  0.00     0.000 Q9\n"),
      ParseError);
}

TEST(PdbqtIo, MultiModelRoundTrip) {
  const PreparedLigand prep = prepare_ligand(sample_ligand());
  // Fake a two-mode docking result from the reference coordinates.
  dock::DockingResult result;
  for (int m = 0; m < 2; ++m) {
    dock::Conformation c;
    c.coords = prep.molecule.coordinates();
    for (Vec3& p : c.coords) p += Vec3{m * 5.0, 0, 0};
    c.feb = -6.0 + m;
    result.conformations.push_back(std::move(c));
  }
  const std::string text = dock::write_poses_pdbqt(prep, result);
  EXPECT_NE(text.find("MODEL 1"), std::string::npos);
  EXPECT_NE(text.find("REMARK VINA RESULT:"), std::string::npos);
  const auto models = read_pdbqt_models(text, prep.molecule.name());
  ASSERT_EQ(models.size(), 2u);
  for (const PdbqtModel& model : models) {
    EXPECT_TRUE(model.is_ligand);
    EXPECT_EQ(model.molecule.atom_count(), prep.molecule.atom_count());
    EXPECT_EQ(model.torsions.torsion_count(), prep.torsions.torsion_count());
  }
  // The two models are 5 A apart on x.
  const double dx = models[1].molecule.center().x - models[0].molecule.center().x;
  EXPECT_NEAR(dx, 5.0, 0.02);
}

TEST(PdbqtIo, ModelsReaderAcceptsSingleDocument) {
  const PreparedLigand prep = prepare_ligand(sample_ligand());
  const auto models = read_pdbqt_models(prep.pdbqt);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].molecule.atom_count(), prep.molecule.atom_count());
}

TEST(PdbqtIo, ModelsReaderRejectsUnterminated) {
  EXPECT_THROW(read_pdbqt_models("MODEL 1\n"), Error);
  EXPECT_THROW(read_pdbqt_models("ENDMDL\n"), Error);
}

TEST(PdbqtIo, RejectsEmpty) {
  EXPECT_THROW(read_pdbqt("REMARK nothing\n"), ParseError);
}

}  // namespace
}  // namespace scidock::mol
