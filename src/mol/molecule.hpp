#pragma once

/// \file molecule.hpp
/// The central molecule model shared by ligands and receptors.
///
/// A Molecule is a flat atom array plus an explicit bond list. Perception
/// (adjacency, ring membership, aromaticity, AutoDock typing) is computed
/// on demand by perceive() and cached; mutating atoms/bonds invalidates the
/// cache.

#include <cstdint>
#include <string>
#include <vector>

#include "mol/atom_typing.hpp"
#include "mol/elements.hpp"
#include "mol/geometry.hpp"

namespace scidock::mol {

struct Atom {
  int serial = 0;               ///< original file serial (1-based)
  std::string name;             ///< PDB atom name, e.g. "CA"
  Element element = Element::Unknown;
  Vec3 pos{};
  double partial_charge = 0.0;  ///< e units (Gasteiger-style)
  AdType ad_type = AdType::C;   ///< valid after perceive()/typing

  // Receptor context (empty/zero for small-molecule ligands).
  std::string residue_name;     ///< e.g. "CYS"
  int residue_seq = 0;
  char chain_id = 'A';
  bool hetero = false;          ///< HETATM record
};

enum class BondOrder : std::uint8_t { Single = 1, Double = 2, Triple = 3, Aromatic = 4 };

struct Bond {
  int a = 0;   ///< atom index (0-based)
  int b = 0;
  BondOrder order = BondOrder::Single;
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int atom_count() const { return static_cast<int>(atoms_.size()); }
  int bond_count() const { return static_cast<int>(bonds_.size()); }

  const Atom& atom(int i) const { return atoms_[static_cast<std::size_t>(i)]; }
  Atom& mutable_atom(int i);
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Appends an atom, returns its index.
  int add_atom(Atom atom);
  /// Appends a bond between existing atom indices.
  void add_bond(int a, int b, BondOrder order = BondOrder::Single);

  /// Neighbour indices of atom i (valid after perceive()).
  const std::vector<int>& neighbors(int i) const;

  /// True if atom i belongs to any ring (valid after perceive()).
  bool in_ring(int i) const;

  /// Derive adjacency, ring membership, aromaticity heuristics, and assign
  /// AutoDock atom types. Idempotent; called automatically by consumers
  /// that need typing. Pass retype = false to keep existing ad_type values
  /// (molecules read from PDBQT already carry authoritative types).
  void perceive(bool retype = true);
  bool perceived() const { return perceived_; }

  /// Infer bonds from interatomic distances and covalent radii (used when
  /// reading PDB files, which carry no CONECT records for most atoms).
  /// Tolerance is the slack added to the radius sum, in Å.
  void infer_bonds_from_geometry(double tolerance = 0.45);

  // ---- Whole-molecule geometry ----
  Vec3 center() const;
  Aabb bounds() const;
  double radius_of_gyration() const;
  double molecular_weight() const;
  int heavy_atom_count() const;
  /// True if any atom is the given element (the Hg hazard check).
  bool contains_element(Element e) const;
  /// True if every atom's AutoDock type is parameterised.
  bool fully_parameterised() const;

  void translate(const Vec3& delta);
  /// Rotate all coordinates about `origin`.
  void rotate(const Quaternion& q, const Vec3& origin);

  /// Positions of all atoms, in order (copy).
  std::vector<Vec3> coordinates() const;
  /// Overwrite all coordinates (size must match atom_count()).
  void set_coordinates(const std::vector<Vec3>& coords);

  /// Distinct AutoDock types present, in enum order (after perceive()).
  std::vector<AdType> ad_types_present() const;

 private:
  void invalidate() { perceived_ = false; }
  void compute_rings();

  std::string name_;
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;

  // Perception cache.
  bool perceived_ = false;
  std::vector<std::vector<int>> adjacency_;
  std::vector<bool> in_ring_;
  std::vector<bool> aromatic_;
};

/// Root-mean-square deviation between two equally-sized coordinate sets,
/// no superposition (the AutoDock convention for docking-pose RMSD).
double rmsd(const std::vector<Vec3>& a, const std::vector<Vec3>& b);

/// RMSD over heavy atoms only, matching atoms by index.
double heavy_atom_rmsd(const Molecule& a, const Molecule& b);

}  // namespace scidock::mol
