#pragma once

/// \file table.hpp
/// In-memory relational storage: tables of Value rows inside a Database.
/// This is the PostgreSQL stand-in behind the provenance repository.

#include <string>
#include <string_view>
#include <vector>

#include "sql/value.hpp"

namespace scidock::sql {

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, std::vector<std::string> columns);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  int column_index(std::string_view column) const;  ///< -1 if absent

  void insert(Row row);
  const std::vector<Row>& rows() const { return rows_; }
  /// In-place mutation access (used by the provenance store's
  /// end-of-activation updates; the engine itself never mutates).
  std::vector<Row>& mutable_rows() { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Remove rows for which `pred(row)` is true; returns count removed.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    const std::size_t before = rows_.size();
    std::erase_if(rows_, pred);
    return before - rows_.size();
  }

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

class Database {
 public:
  /// Creates an empty table; throws InvalidStateError on duplicate name.
  Table& create_table(std::string name, std::vector<std::string> columns);
  bool has_table(std::string_view name) const;
  Table& table(std::string_view name);              ///< throws NotFoundError
  const Table& table(std::string_view name) const;  ///< throws NotFoundError
  void drop_table(std::string_view name);
  std::vector<std::string> table_names() const;

 private:
  std::vector<Table> tables_;
};

}  // namespace scidock::sql
