SELECT a.tag, t.workload, count(*)
FROM hactivity a, hactivation t
WHERE a.actid = t.actid
GROUP BY a.tag
