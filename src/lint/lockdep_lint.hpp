#pragma once

/// \file lockdep_lint.hpp
/// Bridge from the runtime lock-order analyzer (util/lockdep) into the
/// scidock-lint diagnostic machinery: each hazard finding becomes a
/// Diagnostic with a stable LD rule ID (LD001..LD005, see
/// lint::rule_catalog()), so CI gates, the CLI's --lockdep-report and the
/// fixture tests all speak the same format as the static rules.

#include "lint/diagnostics.hpp"

namespace scidock::lint {

/// Convert every finding the analyzer has accumulated so far into a
/// Report (empty when lockdep is compiled out or found nothing). The
/// multi-line cycle/call-site evidence is appended to each message so a
/// formatted diagnostic is self-contained.
Report lockdep_report();

}  // namespace scidock::lint
