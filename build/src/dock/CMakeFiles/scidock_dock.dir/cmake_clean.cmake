file(REMOVE_RECURSE
  "CMakeFiles/scidock_dock.dir/autodock4.cpp.o"
  "CMakeFiles/scidock_dock.dir/autodock4.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/autogrid.cpp.o"
  "CMakeFiles/scidock_dock.dir/autogrid.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/cluster.cpp.o"
  "CMakeFiles/scidock_dock.dir/cluster.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/conformation.cpp.o"
  "CMakeFiles/scidock_dock.dir/conformation.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/dlg.cpp.o"
  "CMakeFiles/scidock_dock.dir/dlg.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/dpf.cpp.o"
  "CMakeFiles/scidock_dock.dir/dpf.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/energy.cpp.o"
  "CMakeFiles/scidock_dock.dir/energy.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/engine.cpp.o"
  "CMakeFiles/scidock_dock.dir/engine.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/grid.cpp.o"
  "CMakeFiles/scidock_dock.dir/grid.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/scoring.cpp.o"
  "CMakeFiles/scidock_dock.dir/scoring.cpp.o.d"
  "CMakeFiles/scidock_dock.dir/vina.cpp.o"
  "CMakeFiles/scidock_dock.dir/vina.cpp.o.d"
  "libscidock_dock.a"
  "libscidock_dock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_dock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
