#pragma once

/// \file sim.hpp
/// Discrete-event simulation core: a clock plus an ordered event queue.
/// The simulated workflow executor, the elasticity controller and the
/// failure machinery all advance time through this object, which lets a
/// 12.5-day cloud execution replay in milliseconds of wall time.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace scidock::cloud {

class Simulation {
 public:
  using EventFn = std::function<void()>;

  double now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Ties break in
  /// scheduling order so the simulation is deterministic.
  void schedule_at(double at, EventFn fn);
  /// Schedule `fn` after a relative delay.
  void schedule_after(double delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the queue empties. Returns the final clock value.
  double run();
  /// Run until the clock would pass `deadline`; pending later events stay
  /// queued.
  double run_until(double deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    double at;
    std::uint64_t seq;  ///< FIFO tie-break
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace scidock::cloud
