file(REMOVE_RECURSE
  "libscidock_dock.a"
)
