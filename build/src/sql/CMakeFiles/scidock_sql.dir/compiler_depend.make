# Empty compiler generated dependencies file for scidock_sql.
# This may be replaced when dependencies are built.
