
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaos/chaos.cpp" "src/chaos/CMakeFiles/scidock_chaos.dir/chaos.cpp.o" "gcc" "src/chaos/CMakeFiles/scidock_chaos.dir/chaos.cpp.o.d"
  "/root/repo/src/chaos/invariants.cpp" "src/chaos/CMakeFiles/scidock_chaos.dir/invariants.cpp.o" "gcc" "src/chaos/CMakeFiles/scidock_chaos.dir/invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wf/CMakeFiles/scidock_wf.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/scidock_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/scidock_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/scidock_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scidock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scidock_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
