#pragma once

/// \file thread_pool.hpp
/// Work-queue thread pool used by the native workflow executor and by the
/// Vina engine's exhaustiveness-level parallelism.
///
/// Design: a single mutex-protected FIFO. The pool is small (it models
/// "virtual cores" of one VM, typically 2-16), so a sharded/stealing deque
/// would be complexity without measurable benefit; tasks in scidock are
/// coarse (whole activity executions or whole MC chains).

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace scidock {

class ThreadPool {
 public:
  /// Runs at the start of every task submitted after installation, inside
  /// the task's own future/exception boundary: a throwing hook surfaces
  /// through the task's future exactly like a throwing task body. Used by
  /// the chaos harness to inject scheduling delays and task exceptions.
  using TaskHook = std::function<void()>;

  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: outstanding tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Install (or clear, with an empty function) the per-task hook.
  /// Applies to tasks submitted after the call.
  void set_task_hook(TaskHook hook);

  /// Observability callbacks, invoked outside the pool lock. `enqueued`
  /// fires after a task is queued with the resulting queue depth;
  /// `finished` fires when a task completes (or throws) with its
  /// queue-wait and execution wall times. Both must be thread-safe; the
  /// obs layer installs them via obs::instrument_thread_pool. Applies to
  /// tasks submitted after the call.
  struct StatsHook {
    std::function<void(std::size_t queue_depth)> enqueued;
    std::function<void(double wait_s, double exec_s)> finished;
  };
  void set_stats_hook(StatsHook hook);

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    return submit_with_edge(std::forward<F>(fn), racer::on_task_spawn());
  }

  /// submit() with a caller-held racer fork token: the racer analyzer
  /// sees submit→run as a happens-before edge automatically, but only
  /// the holder of the edge can record the run→join edge after
  /// future.get() (parallel_for does; see racer::on_task_join).
  template <typename F>
  auto submit_with_edge(F&& fn, racer::TaskEdge edge)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    TaskHook hook;
    StatsHook stats;
    {
      MutexLock lock(mutex_);
      hook = task_hook_;
      stats = stats_hook_;
    }
    const auto enqueued_at = std::chrono::steady_clock::now();
    auto task = std::make_shared<std::packaged_task<R()>>(
        [hook = std::move(hook), finished = std::move(stats.finished),
         enqueued_at, edge = std::move(edge),
         fn = std::forward<F>(fn)]() mutable -> R {
          // TaskRun joins this worker's clock with the spawner's fork
          // snapshot on entry and publishes the finish snapshot on exit
          // (its destructor runs before the future becomes ready).
          racer::TaskRun racer_run(edge);
          TaskTimer timer{std::move(finished), enqueued_at,
                          std::chrono::steady_clock::now()};
          if (hook) hook();
          return fn();
        });
    std::future<R> fut = task->get_future();
    std::size_t depth = 0;
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      depth = queue_.size();
    }
    cv_.notify_one();
    if (stats.enqueued) stats.enqueued(depth);
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// `grain` > 1 batches that many consecutive indices into one task, so
  /// fine-grained loops (AutoGrid z-slabs, MC chains) don't pay one
  /// dispatch + hook invocation per index; task and stats hooks then fire
  /// once per chunk. A chunk stops at the first throwing iteration, and
  /// exceptions from any chunk are rethrown (first submitted wins).
  ///
  /// Calling this from a worker of the *same* pool queues the chunks
  /// behind the calling task and then blocks on them — a deadlock once
  /// every worker does it. Lockdep reports exactly that as LD002
  /// (pool self-wait) with the caller's site.
#if SCIDOCK_LOCKDEP_ENABLED
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1,
                    std::source_location site = std::source_location::current());
#else
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);
#endif

 private:
  /// Fires `finished` (if set) when the task body leaves scope — normal
  /// return and exception alike — with (queue wait, execution) seconds.
  struct TaskTimer {
    std::function<void(double, double)> finished;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point started;
    ~TaskTimer() {
      if (!finished) return;
      const auto now = std::chrono::steady_clock::now();
      finished(std::chrono::duration<double>(started - enqueued).count(),
               std::chrono::duration<double>(now - started).count());
    }
  };

  void worker_loop();

  std::vector<std::thread> workers_;  ///< written only in the constructor
  Mutex mutex_{"pool.queue"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SCIDOCK_GUARDED_BY(mutex_);
  TaskHook task_hook_ SCIDOCK_GUARDED_BY(mutex_);
  StatsHook stats_hook_ SCIDOCK_GUARDED_BY(mutex_);
  bool stop_ SCIDOCK_GUARDED_BY(mutex_) = false;
};

}  // namespace scidock
