#include "wf/spec.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/xml.hpp"

namespace scidock::wf {

WorkflowDef load_spec(std::string_view xml_text) {
  const xml::Document doc = xml::parse(xml_text);
  SCIDOCK_REQUIRE(doc.root != nullptr, "empty XML document");
  SCIDOCK_REQUIRE(doc.root->name() == "SciCumulus",
                  "root element must be <SciCumulus>");

  WorkflowDef wf;
  if (const xml::Element* db = doc.root->child("database")) {
    if (auto v = db->attribute("name")) wf.database.name = *v;
    if (auto v = db->attribute("server")) wf.database.server = *v;
    if (auto v = db->attribute("port")) {
      wf.database.port = static_cast<int>(parse_int(*v, "database port"));
    }
  }

  const xml::Element* wf_el = doc.root->child("SciCumulusWorkflow");
  SCIDOCK_REQUIRE(wf_el != nullptr, "missing <SciCumulusWorkflow>");
  wf.tag = wf_el->require_attribute("tag");
  if (auto v = wf_el->attribute("description")) wf.description = *v;
  if (auto v = wf_el->attribute("exectag")) wf.exec_tag = *v;
  if (auto v = wf_el->attribute("expdir")) wf.expdir = *v;

  for (const xml::Element* act_el : wf_el->children_named("SciCumulusActivity")) {
    ActivityDef act;
    act.tag = act_el->require_attribute("tag");
    if (auto v = act_el->attribute("type")) act.op = algebraic_op_from(*v);
    if (auto v = act_el->attribute("templatedir")) act.template_dir = *v;
    if (auto v = act_el->attribute("activation")) act.activation_command = *v;
    for (const xml::Element* rel_el : act_el->children_named("Relation")) {
      RelationDef rel;
      rel.name = rel_el->require_attribute("name");
      if (auto v = rel_el->attribute("filename")) rel.filename = *v;
      if (auto v = rel_el->attribute("fields")) {
        for (const std::string& f : split(*v, ',')) {
          const std::string_view t = trim(f);
          if (!t.empty()) rel.fields.emplace_back(t);
        }
      }
      const std::string reltype = rel_el->require_attribute("reltype");
      if (iequals(reltype, "Input")) rel.is_input = true;
      else if (iequals(reltype, "Output")) rel.is_input = false;
      else throw InvalidStateError("unknown reltype '" + reltype + "'");
      act.relations.push_back(std::move(rel));
    }
    SCIDOCK_REQUIRE(!wf.has_activity(act.tag),
                    "duplicate activity tag '" + act.tag + "'");
    wf.activities.push_back(std::move(act));
  }
  SCIDOCK_REQUIRE(!wf.activities.empty(), "workflow has no activities");
  return wf;
}

std::string save_spec(const WorkflowDef& wf) {
  xml::Document doc;
  doc.root = std::make_unique<xml::Element>("SciCumulus");
  xml::Element& db = doc.root->add_child("database");
  db.set_attribute("name", wf.database.name);
  db.set_attribute("server", wf.database.server);
  db.set_attribute("port", std::to_string(wf.database.port));

  xml::Element& wf_el = doc.root->add_child("SciCumulusWorkflow");
  wf_el.set_attribute("tag", wf.tag);
  wf_el.set_attribute("description", wf.description);
  wf_el.set_attribute("exectag", wf.exec_tag);
  wf_el.set_attribute("expdir", wf.expdir);

  for (const ActivityDef& act : wf.activities) {
    xml::Element& act_el = wf_el.add_child("SciCumulusActivity");
    act_el.set_attribute("tag", act.tag);
    act_el.set_attribute("type", std::string(to_string(act.op)));
    act_el.set_attribute("templatedir", act.template_dir);
    act_el.set_attribute("activation", act.activation_command);
    for (const RelationDef& rel : act.relations) {
      xml::Element& rel_el = act_el.add_child("Relation");
      rel_el.set_attribute("reltype", rel.is_input ? "Input" : "Output");
      rel_el.set_attribute("name", rel.name);
      rel_el.set_attribute("filename", rel.filename);
      if (!rel.fields.empty()) {
        rel_el.set_attribute("fields", join(rel.fields, ","));
      }
    }
  }
  return doc.to_string();
}

}  // namespace scidock::wf
