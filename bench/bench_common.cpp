#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "data/table2.hpp"
#include "util/strings.hpp"

namespace scidock::bench {

const std::vector<int>& paper_core_counts() {
  static const std::vector<int> kCores{2, 4, 8, 16, 32, 64, 96, 128};
  return kCores;
}

Sweep run_scaling_sweep(core::EngineMode mode, std::size_t pairs,
                        const std::vector<int>& cores, std::uint64_t seed) {
  core::ScidockOptions options;
  options.engine_mode = mode;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(), pairs, options);

  Sweep sweep;
  sweep.engine = mode == core::EngineMode::ForceAd4 ? "AD4" : "Vina";

  std::vector<wf::SimReport> reports;
  for (int n : cores) {
    wf::SimExecutorOptions sim_opts = core::default_sim_options(n, seed);
    reports.push_back(core::run_simulated(exp, n, nullptr, sim_opts));
  }
  // Serial baseline: the paper's "best-performing workflow execution on a
  // single core". A single core pays everything the 2-core run pays
  // (failures, hang watchdogs, staging) at half the parallelism, so the
  // 1-core-equivalent TET is 2 x TET(2 cores). (Using only the successful
  // service-time sum would under-credit the parallel runs, since they too
  // re-execute the ~10% failed activations.)
  double serial = 2.0 * reports.front().total_execution_time_s;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i] == 2) serial = 2.0 * reports[i].total_execution_time_s;
  }
  sweep.serial_tet_s = serial;

  for (std::size_t i = 0; i < cores.size(); ++i) {
    const wf::SimReport& r = reports[i];
    SweepPoint pt;
    pt.cores = cores[i];
    pt.tet_s = r.total_execution_time_s;
    pt.speedup_vs_serial = serial / r.total_execution_time_s;
    pt.efficiency = pt.speedup_vs_serial / cores[i];
    pt.improvement_pct = 100.0 * (1.0 - r.total_execution_time_s / serial);
    pt.failures = r.activations_failed;
    pt.hangs = r.activations_hung;
    pt.sched_overhead_s = r.scheduling_overhead_s;
    sweep.points.push_back(pt);
  }
  return sweep;
}

std::string write_bench_json(const std::string& name,
                             const std::vector<JsonField>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name.c_str());
  for (const JsonField& field : fields) {
    std::fprintf(f, ",\n  \"%s\": %s", field.key.c_str(),
                 field.value.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return path;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void print_compare(const std::string& what, const std::string& paper,
                   const std::string& measured) {
  std::printf("  %-42s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace scidock::bench
