// Figure 9: parallel efficiency of SciDock vs virtual cores — efficiency
// decreases from 32 to 128 cores as the scheduler's planning cost grows
// with the activations x VMs search space.

#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: efficiency vs virtual cores", "Figure 9");

  const int pairs = bench::env_int("SCIDOCK_SCALING_PAIRS", 9996);
  std::printf("workload: %d pairs\n\n", pairs);

  const bench::Sweep ad4 = bench::run_scaling_sweep(
      core::EngineMode::ForceAd4, static_cast<std::size_t>(pairs),
      bench::paper_core_counts());
  const bench::Sweep vina = bench::run_scaling_sweep(
      core::EngineMode::ForceVina, static_cast<std::size_t>(pairs),
      bench::paper_core_counts());

  std::printf("%6s | %10s | %10s | %22s\n", "cores", "eff (AD4)",
              "eff (Vina)", "sched wait AD4 (slot-s)");
  std::printf("-------+------------+------------+-----------------------\n");
  for (std::size_t i = 0; i < ad4.points.size(); ++i) {
    std::printf("%6d | %10.2f | %10.2f | %22.0f\n", ad4.points[i].cores,
                ad4.points[i].efficiency, vina.points[i].efficiency,
                ad4.points[i].sched_overhead_s);
  }

  auto eff_at = [](const bench::Sweep& s, int cores) {
    for (const bench::SweepPoint& pt : s.points) {
      if (pt.cores == cores) return pt.efficiency;
    }
    return 0.0;
  };

  std::printf("\npaper-vs-measured (shape targets):\n");
  bench::print_compare("efficiency decreases 32 -> 128 cores", "yes",
                       (eff_at(ad4, 128) < eff_at(ad4, 32) &&
                        eff_at(vina, 128) < eff_at(vina, 32))
                           ? "yes"
                           : "NO");
  bench::print_compare("AD4 efficiency @ 32 / @ 128",
                       "high / visibly degraded",
                       strformat("%.2f / %.2f", eff_at(ad4, 32), eff_at(ad4, 128)));
  bench::print_compare(
      "cause: scheduler overhead grows with scale", "stated in Section V.C",
      strformat("%.0f s @2 cores -> %.0f s @128 cores",
                ad4.points.front().sched_overhead_s,
                ad4.points.back().sched_overhead_s));
  return 0;
}
