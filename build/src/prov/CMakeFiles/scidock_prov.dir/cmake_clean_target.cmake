file(REMOVE_RECURSE
  "libscidock_prov.a"
)
