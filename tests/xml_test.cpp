// Unit tests for the XML DOM parser used by workflow specifications.

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/xml.hpp"

namespace scidock::xml {
namespace {

TEST(Xml, ParsesSimpleElement) {
  const Document doc = parse("<root a=\"1\" b=\"two\">text</root>");
  ASSERT_TRUE(doc.root);
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_EQ(doc.root->attribute("a"), "1");
  EXPECT_EQ(doc.root->attribute("b"), "two");
  EXPECT_EQ(doc.root->attribute("c"), std::nullopt);
  EXPECT_EQ(doc.root->text(), "text");
}

TEST(Xml, ParsesNestedChildren) {
  const Document doc = parse(
      "<wf><act tag=\"babel\"/><act tag=\"vina\"/><db/></wf>");
  EXPECT_EQ(doc.root->children().size(), 3u);
  const auto acts = doc.root->children_named("act");
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[1]->attribute("tag"), "vina");
  EXPECT_NE(doc.root->child("db"), nullptr);
  EXPECT_EQ(doc.root->child("missing"), nullptr);
}

TEST(Xml, ParsesDeclarationCommentsAndDoctype) {
  const Document doc = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE scicumulus>\n"
      "<!-- header comment -->\n"
      "<a><!-- inner --><b/></a>\n"
      "<!-- trailing -->");
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_EQ(doc.root->children().size(), 1u);
}

TEST(Xml, SingleQuotedAttributes) {
  const Document doc = parse("<a k='v\"w'/>");
  EXPECT_EQ(doc.root->attribute("k"), "v\"w");
}

TEST(Xml, EntityHandling) {
  const Document doc = parse("<a k=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;</a>");
  EXPECT_EQ(doc.root->attribute("k"), "<&>");
  EXPECT_EQ(doc.root->text(), "\"x' A");
}

TEST(Xml, Cdata) {
  const Document doc = parse("<a><![CDATA[<not parsed> & raw]]></a>");
  EXPECT_EQ(doc.root->text(), "<not parsed> & raw");
}

TEST(Xml, EscapeUnescapeRoundTrip) {
  const std::string raw = "a<b>&\"c'd";
  EXPECT_EQ(unescape(escape(raw)), raw);
}

TEST(Xml, SerialiseParseRoundTrip) {
  Document doc;
  doc.root = std::make_unique<Element>("SciCumulus");
  Element& wf = doc.root->add_child("SciCumulusWorkflow");
  wf.set_attribute("tag", "SciDock");
  wf.set_attribute("expdir", "/root/scidock/");
  Element& act = wf.add_child("SciCumulusActivity");
  act.set_attribute("tag", "babel");
  act.set_text("a < b & c");
  const Document back = parse(doc.to_string());
  const Element* wf2 = back.root->child("SciCumulusWorkflow");
  ASSERT_NE(wf2, nullptr);
  EXPECT_EQ(wf2->attribute("tag"), "SciDock");
  EXPECT_EQ(wf2->child("SciCumulusActivity")->text(), "a < b & c");
}

TEST(Xml, SetAttributeOverwrites) {
  Element e("x");
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.attribute("k"), "2");
}

TEST(Xml, RequireAttributeThrows) {
  Element e("x");
  EXPECT_THROW(e.require_attribute("nope"), NotFoundError);
}

TEST(Xml, ErrorsCarryLineNumbers) {
  try {
    parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("<a>"), ParseError);
  EXPECT_THROW(parse("<a></b>"), ParseError);
  EXPECT_THROW(parse("<a b></a>"), ParseError);
  EXPECT_THROW(parse("<a b=unquoted/>"), ParseError);
  EXPECT_THROW(parse("<a/><b/>"), ParseError);  // two roots
  EXPECT_THROW(parse("<a>&unknown;</a>"), ParseError);
  EXPECT_THROW(parse("<a><!-- unterminated </a>"), ParseError);
}

}  // namespace
}  // namespace scidock::xml
