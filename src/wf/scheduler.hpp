#pragma once

/// \file scheduler.hpp
/// Activation scheduling policies. SciCumulus' native policy is a
/// weighted-cost greedy algorithm (Oliveira et al. 2012): long-running
/// activations are matched to the fastest available VMs. A round-robin
/// policy is provided as the ablation baseline.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cloud/vm.hpp"

namespace scidock::wf {

/// A schedulable activation as the policy sees it.
struct PendingActivation {
  long long id = 0;            ///< executor-internal handle
  std::string activity_tag;
  double expected_cost_s = 1.0;  ///< on the reference core
  int attempts = 0;            ///< prior failed attempts (re-executions)
};

/// Placement decisions accumulated across a run, surfaced by the obs
/// layer as scidock_sched_* metrics.
struct SchedulerStats {
  long long picks = 0;
  long long reexecution_picks = 0;  ///< picked activation had attempts > 0
  long long queued_seen = 0;        ///< sum of queue lengths at pick time

  double mean_queue_length() const {
    return picks > 0 ? static_cast<double>(queued_seen) /
                           static_cast<double>(picks)
                     : 0.0;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Choose which queued activation the given VM slot should run next.
  /// Returns an index into `queue` (never empty when called). Records
  /// the decision in stats() before returning.
  std::size_t pick(const std::vector<PendingActivation>& queue,
                   const cloud::VmInstance& vm) {
    const std::size_t i = pick_impl(queue, vm);
    ++stats_.picks;
    stats_.queued_seen += static_cast<long long>(queue.size());
    if (queue[i].attempts > 0) ++stats_.reexecution_picks;
    return i;
  }

  const SchedulerStats& stats() const { return stats_; }

 protected:
  /// Policy hook behind pick(); same contract.
  virtual std::size_t pick_impl(const std::vector<PendingActivation>& queue,
                                const cloud::VmInstance& vm) = 0;

 private:
  SchedulerStats stats_;
};

/// SciCumulus' weighted-cost greedy policy: fast VMs (low slowdown) take
/// the most expensive queued activation; slow VMs take the cheapest.
/// Re-executions are prioritised so failures do not starve.
class GreedyCostScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-cost"; }

  /// A VM whose slowdown() is below this is considered "fast".
  double fast_vm_threshold = 1.0;

 protected:
  std::size_t pick_impl(const std::vector<PendingActivation>& queue,
                        const cloud::VmInstance& vm) override;
};

/// FIFO baseline (what Hadoop-style engines effectively do for SciDock).
class FifoScheduler : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }

 protected:
  std::size_t pick_impl(const std::vector<PendingActivation>& queue,
                        const cloud::VmInstance& vm) override;
};

std::unique_ptr<Scheduler> make_scheduler(std::string_view policy_name);

}  // namespace scidock::wf
