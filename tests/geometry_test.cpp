// Unit tests for mol geometry: vectors, quaternions, poses, dihedrals.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mol/geometry.hpp"
#include "util/rng.hpp"

namespace scidock::mol {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossFollowsRightHandRule) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.normalized().norm(), 1.0);
  // Degenerate input gives a unit fallback, never NaN.
  const Vec3 zero{};
  EXPECT_DOUBLE_EQ(zero.normalized().norm(), 1.0);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {1, 2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0, 0}, {1, 2, 2}), 9.0);
}

TEST(Quaternion, IdentityLeavesVectorsAlone) {
  const Vec3 v{1.5, -2.0, 0.5};
  const Vec3 r = Quaternion::identity().rotate(v);
  EXPECT_NEAR(distance(r, v), 0.0, 1e-12);
}

TEST(Quaternion, AxisAngleRotation) {
  // 90 degrees about z maps x to y.
  const Quaternion q = Quaternion::from_axis_angle({0, 0, 1}, kPi / 2);
  const Vec3 r = q.rotate({1, 0, 0});
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Quaternion, RotationPreservesLengthsAndAngles) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Quaternion q = Quaternion::random_uniform(rng.uniform(), rng.uniform(),
                                                    rng.uniform());
    const Vec3 a{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 b{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(q.rotate(a).norm(), a.norm(), 1e-9);
    EXPECT_NEAR(q.rotate(a).dot(q.rotate(b)), a.dot(b), 1e-9);
  }
}

TEST(Quaternion, CompositionMatchesSequentialRotation) {
  const Quaternion q1 = Quaternion::from_axis_angle({0, 0, 1}, 0.7);
  const Quaternion q2 = Quaternion::from_axis_angle({1, 0, 0}, -0.3);
  const Vec3 v{0.2, 1.0, -0.5};
  const Vec3 sequential = q2.rotate(q1.rotate(v));
  const Vec3 composed = (q2 * q1).rotate(v);
  EXPECT_NEAR(distance(sequential, composed), 0.0, 1e-12);
}

TEST(Quaternion, ConjugateInverts) {
  const Quaternion q = Quaternion::from_axis_angle({1, 2, 3}, 1.1);
  const Vec3 v{4, 5, 6};
  EXPECT_NEAR(distance(q.conjugate().rotate(q.rotate(v)), v), 0.0, 1e-12);
}

TEST(Quaternion, RandomUniformIsUnit) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Quaternion q = Quaternion::random_uniform(rng.uniform(), rng.uniform(),
                                                    rng.uniform());
    EXPECT_NEAR(q.norm(), 1.0, 1e-12);
  }
}

TEST(Pose, RotateThenTranslate) {
  Pose pose;
  pose.rotation = Quaternion::from_axis_angle({0, 0, 1}, kPi);
  pose.translation = {10, 0, 0};
  const Vec3 r = pose.apply({1, 0, 0});
  EXPECT_NEAR(r.x, 9.0, 1e-12);
  EXPECT_NEAR(r.y, 0.0, 1e-12);
}

TEST(Geometry, CentroidAndBounds) {
  const std::vector<Vec3> pts{{0, 0, 0}, {2, 0, 0}, {0, 4, 0}, {0, 0, 6}};
  const Vec3 c = centroid(pts);
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
  EXPECT_NEAR(c.z, 1.5, 1e-12);
  const Aabb box = bounding_box(pts);
  EXPECT_EQ(box.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(box.hi, (Vec3{2, 4, 6}));
  EXPECT_TRUE(box.contains({1, 1, 1}));
  EXPECT_FALSE(box.contains({3, 0, 0}));
}

TEST(Geometry, DihedralKnownValues) {
  // cis (eclipsed) = 0, trans = pi.
  const Vec3 a{1, 1, 0}, b{1, 0, 0}, c{0, 0, 0};
  EXPECT_NEAR(dihedral_angle(a, b, c, {0, 1, 0}), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(dihedral_angle(a, b, c, {0, -1, 0})), kPi, 1e-9);
  EXPECT_NEAR(std::abs(dihedral_angle(a, b, c, {0, 0, 1})), kPi / 2, 1e-9);
}

TEST(Geometry, RotateAboutAxisMatchesDihedralChange) {
  const Vec3 a{1, 1, 0}, b{1, 0, 0}, c{0, 0, 0}, d{0, 1, 0};
  const double before = dihedral_angle(a, b, c, d);
  const Vec3 d2 = rotate_about_axis(d, c, b - c, 0.5);
  const double after = dihedral_angle(a, b, c, d2);
  // Rotating the far atom about the central bond changes the dihedral by
  // exactly the rotation angle (sign depends on axis orientation).
  EXPECT_NEAR(std::abs(after - before), 0.5, 1e-9);
}

TEST(Geometry, RotateAboutAxisKeepsAxisPointsFixed) {
  const Vec3 origin{1, 2, 3};
  const Vec3 axis{0, 1, 0};
  const Vec3 on_axis = origin + axis * 2.0;
  EXPECT_NEAR(distance(rotate_about_axis(on_axis, origin, axis, 1.3), on_axis),
              0.0, 1e-12);
}

}  // namespace
}  // namespace scidock::mol
