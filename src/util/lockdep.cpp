#include "util/lockdep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iterator>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scidock::lockdep {

std::string_view to_string(HazardKind kind) {
  switch (kind) {
    case HazardKind::kLockInversion: return "lock-order inversion";
    case HazardKind::kPoolSelfWait: return "pool self-wait";
    case HazardKind::kWaitWhileHolding: return "wait while holding a lock";
    case HazardKind::kLongHold: return "long lock hold";
    case HazardKind::kDuplicateClass: return "duplicate lock-class name";
  }
  return "?";
}

std::string_view rule_id(HazardKind kind) {
  switch (kind) {
    case HazardKind::kLockInversion: return "LD001";
    case HazardKind::kPoolSelfWait: return "LD002";
    case HazardKind::kWaitWhileHolding: return "LD003";
    case HazardKind::kLongHold: return "LD004";
    case HazardKind::kDuplicateClass: return "LD005";
  }
  return "LD000";
}

#if SCIDOCK_LOCKDEP_ENABLED

namespace {

using Clock = std::chrono::steady_clock;

std::string site_string(const char* file, int line) {
  if (file == nullptr || file[0] == '\0') return "?";
  return std::string(file) + ":" + std::to_string(line);
}

unsigned long long this_thread_id() {
  return static_cast<unsigned long long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/// One lock currently held by a thread.
struct Held {
  int class_id = kAnonymousClass;
  const void* instance = nullptr;
  const char* file = "";
  int line = 0;
  Clock::time_point since{};
};

/// First-witness metadata for an order-graph edge held -> acquired.
struct EdgeWitness {
  const char* held_file = "";
  int held_line = 0;
  const char* acquire_file = "";
  int acquire_line = 0;
  unsigned long long thread_id = 0;
};

/// All global analyzer state behind one raw std::mutex (never a
/// scidock::Mutex: the hooks must not re-enter themselves). A Meyer
/// singleton so namespace-scope Mutexes (logging's sink lock) can
/// register classes during static initialisation in any order.
struct Global {
  std::mutex mu;
  /// (name, registration site) -> class id: instances born from one
  /// declaration share a class; a second declaration reusing the name is
  /// an LD005 error and gets its own class (see register_class).
  std::unordered_map<std::string, int> class_ids;
  /// name -> site of the first registration, for LD005 attribution.
  std::unordered_map<std::string, std::string> class_sites;
  std::vector<std::string> class_names;  // index = class id
  /// adjacency: class -> (successor class -> first witness)
  std::unordered_map<int, std::unordered_map<int, EdgeWitness>> graph;
  std::vector<Finding> findings_list;
  /// Dedup keys for non-inversion findings (kind, class/site identity).
  std::unordered_set<std::string> reported;

  std::atomic<bool> enabled{true};
  std::atomic<double> long_hold_s{1.0};
  std::atomic<long long> acquisitions{0};
  std::atomic<long long> order_edges{0};
  std::atomic<long long> cond_waits{0};
  std::atomic<long long> pool_wait_checks{0};
  std::atomic<long long> blocking_waits{0};
  std::atomic<long long> findings_error{0};
  std::atomic<long long> findings_warning{0};

  Global() { class_names.emplace_back("<unnamed>"); }
};

Global& global() {
  static Global g;
  return g;
}

thread_local std::vector<Held> t_held;
/// Edges this thread has already pushed through the global graph, so the
/// steady state costs one thread-local hash probe per acquisition.
thread_local std::unordered_set<unsigned long long> t_seen_edges;
thread_local const void* t_worker_pool = nullptr;

unsigned long long edge_key(int from, int to) {
  return (static_cast<unsigned long long>(static_cast<unsigned>(from)) << 32) |
         static_cast<unsigned>(to);
}

/// Names of every held lock except `except`, comma-joined with sites.
std::string held_summary(Global& g, const void* except) {
  std::string out;
  for (const Held& h : t_held) {
    if (h.instance == except) continue;
    if (!out.empty()) out += ", ";
    out += g.class_names[static_cast<std::size_t>(h.class_id)] +
           " (acquired at " + site_string(h.file, h.line) + ")";
  }
  return out;
}

void record_finding(Global& g, Finding finding) {
  (finding.is_error ? g.findings_error : g.findings_warning)
      .fetch_add(1, std::memory_order_relaxed);
  g.findings_list.push_back(std::move(finding));
}

/// DFS for a path `from` -> ... -> `target` in the order graph. Returns
/// the class-id path including both endpoints, or empty.
std::vector<int> find_path(Global& g, int from, int target) {
  std::vector<int> stack{from};
  std::unordered_set<int> visited{from};
  std::unordered_map<int, int> parent;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == target) {
      std::vector<int> path{target};
      while (path.back() != from) path.push_back(parent[path.back()]);
      std::reverse(path.begin(), path.end());
      return path;
    }
    const auto it = g.graph.find(node);
    if (it == g.graph.end()) continue;
    for (const auto& [next, witness] : it->second) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return {};
}

/// `held` -> `acquiring` is new and closes a cycle: the graph already
/// orders acquiring before held. Build the full diagnostic.
void report_inversion(Global& g, const Held& held, int acquiring_class,
                      std::source_location site,
                      const std::vector<int>& back_path) {
  Finding f;
  f.kind = HazardKind::kLockInversion;
  f.file = site.file_name();
  f.line = static_cast<int>(site.line());
  const std::string& held_name =
      g.class_names[static_cast<std::size_t>(held.class_id)];
  const std::string& acq_name =
      g.class_names[static_cast<std::size_t>(acquiring_class)];
  f.message = "lock-order inversion: acquiring '" + acq_name +
              "' while holding '" + held_name + "', but '" + held_name +
              "' has been acquired under '" + acq_name + "'";

  // Closing edge first (this acquisition), then the recorded back path
  // acquiring -> ... -> held that makes it a cycle.
  CycleStep closing;
  closing.held = held_name;
  closing.acquired = acq_name;
  closing.held_site = site_string(held.file, held.line);
  closing.acquire_site =
      site_string(site.file_name(), static_cast<int>(site.line()));
  closing.thread_id = this_thread_id();
  f.cycle.push_back(closing);
  for (std::size_t i = 0; i + 1 < back_path.size(); ++i) {
    const EdgeWitness& w = g.graph[back_path[i]][back_path[i + 1]];
    CycleStep step;
    step.held = g.class_names[static_cast<std::size_t>(back_path[i])];
    step.acquired = g.class_names[static_cast<std::size_t>(back_path[i + 1])];
    step.held_site = site_string(w.held_file, w.held_line);
    step.acquire_site = site_string(w.acquire_file, w.acquire_line);
    step.thread_id = w.thread_id;
    f.cycle.push_back(step);
  }

  std::string d = "potential deadlock cycle (" + std::to_string(f.cycle.size()) +
                  " edges):\n";
  for (const CycleStep& s : f.cycle) {
    d += "  thread " + std::to_string(s.thread_id) + " acquired '" +
         s.acquired + "' at " + s.acquire_site + " while holding '" + s.held +
         "' (acquired at " + s.held_site + ")\n";
  }
  f.details = std::move(d);
  record_finding(g, std::move(f));
}

}  // namespace

int register_class(const char* name, std::source_location site) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  const std::string class_name = name == nullptr ? "<unnamed>" : name;
  const std::string where =
      site_string(site.file_name(), static_cast<int>(site.line()));
  // Classes are keyed by (name, site): the map key folds both together so
  // every instance constructed from one declaration (member initializer,
  // array, loop) shares a class, while a second declaration that reuses
  // the name gets a fresh class instead of silently merging two
  // unrelated locks' order graphs (which would corrupt LD001 cycles).
  const std::string key = class_name + "\x1f" + where;
  if (const auto it = g.class_ids.find(key); it != g.class_ids.end()) {
    return it->second;
  }
  const auto [site_it, first_use] = g.class_sites.emplace(class_name, where);
  const int id = static_cast<int>(g.class_names.size());
  g.class_ids.emplace(key, id);
  if (first_use) {
    g.class_names.push_back(class_name);
    return id;
  }
  // Duplicate name from a different site: report and disambiguate.
  g.class_names.push_back(class_name + "@" + where);
  if (g.reported.insert("LD005:" + class_name + ":" + where).second) {
    Finding f;
    f.kind = HazardKind::kDuplicateClass;
    f.file = site.file_name();
    f.line = static_cast<int>(site.line());
    f.message = "lock-class name '" + class_name +
                "' registered from two declarations: first at " +
                site_it->second + ", again at " + where;
    f.details = "  each declaration gets its own order graph (the second "
                "reports as '" + class_name + "@" + where + "') so LD001 "
                "cycle attribution stays truthful; rename one of the "
                "Mutexes\n";
    record_finding(g, std::move(f));
  }
  return id;
}

void set_enabled(bool enabled_now) {
  global().enabled.store(enabled_now, std::memory_order_relaxed);
}

bool enabled() { return global().enabled.load(std::memory_order_relaxed); }

void set_long_hold_threshold(double seconds) {
  global().long_hold_s.store(seconds, std::memory_order_relaxed);
}

double long_hold_threshold() {
  return global().long_hold_s.load(std::memory_order_relaxed);
}

void on_acquire(int class_id, const void* instance,
                std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.acquisitions.fetch_add(1, std::memory_order_relaxed);

  // Order edge from the innermost held *named* lock. Edges from deeper
  // holds are implied transitively: the stack [A, B] itself recorded
  // A -> B when B was acquired.
  if (class_id != kAnonymousClass && !t_held.empty()) {
    const Held* top = nullptr;
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
      if (it->class_id != kAnonymousClass) {
        top = &*it;
        break;
      }
    }
    // Re-acquiring a class already held (two shards of one map, a
    // recursive path) is ordering-neutral for distinct instances and a
    // self-deadlock for the same one; the graph keeps no self-edges, so
    // only cross-class pairs are examined.
    if (top != nullptr && top->class_id != class_id &&
        t_seen_edges.insert(edge_key(top->class_id, class_id)).second) {
      std::lock_guard lock(g.mu);
      auto& successors = g.graph[top->class_id];
      if (successors.find(class_id) == successors.end()) {
        // New global edge: does the reverse direction already exist?
        const std::vector<int> back_path =
            find_path(g, class_id, top->class_id);
        if (!back_path.empty()) report_inversion(g, *top, class_id, site,
                                                 back_path);
        EdgeWitness w;
        w.held_file = top->file;
        w.held_line = top->line;
        w.acquire_file = site.file_name();
        w.acquire_line = static_cast<int>(site.line());
        w.thread_id = this_thread_id();
        successors.emplace(class_id, w);
        g.order_edges.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  t_held.push_back(Held{class_id, instance, site.file_name(),
                        static_cast<int>(site.line()), Clock::now()});
}

void on_try_acquired(int class_id, const void* instance,
                     std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.acquisitions.fetch_add(1, std::memory_order_relaxed);
  t_held.push_back(Held{class_id, instance, site.file_name(),
                        static_cast<int>(site.line()), Clock::now()});
}

void on_release(const void* instance) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance != instance) continue;
    const double threshold = g.long_hold_s.load(std::memory_order_relaxed);
    if (threshold > 0.0) {
      const double held_s =
          std::chrono::duration<double>(Clock::now() - it->since).count();
      if (held_s > threshold) {
        std::lock_guard lock(g.mu);
        const std::string name =
            g.class_names[static_cast<std::size_t>(it->class_id)];
        if (g.reported.insert("LD004:" + name + ":" +
                              site_string(it->file, it->line)).second) {
          Finding f;
          f.kind = HazardKind::kLongHold;
          f.is_error = false;
          f.file = it->file;
          f.line = it->line;
          f.message = "lock '" + name + "' held for " +
                      std::to_string(held_s) + " s (threshold " +
                      std::to_string(threshold) + " s)";
          f.details = "acquired at " + site_string(it->file, it->line) + "\n";
          record_finding(g, std::move(f));
        }
      }
    }
    t_held.erase(std::next(it).base());
    return;
  }
}

void on_cond_wait(const void* mutex_instance, std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.cond_waits.fetch_add(1, std::memory_order_relaxed);
  bool holding_other = false;
  for (const Held& h : t_held) {
    if (h.instance != mutex_instance) holding_other = true;
  }
  if (!holding_other) return;
  std::lock_guard lock(g.mu);
  const std::string where =
      site_string(site.file_name(), static_cast<int>(site.line()));
  if (!g.reported.insert("LD003:cond:" + where).second) return;
  Finding f;
  f.kind = HazardKind::kWaitWhileHolding;
  f.file = site.file_name();
  f.line = static_cast<int>(site.line());
  f.message = "CondVar::wait at " + where +
              " entered while holding unrelated lock(s): " +
              held_summary(g, mutex_instance);
  f.details = "a waiter parks with " + held_summary(g, mutex_instance) +
              " still held; any thread needing those locks to reach the "
              "notify stalls forever\n";
  record_finding(g, std::move(f));
}

PoolWorkerScope::PoolWorkerScope(const void* pool) : previous_(t_worker_pool) {
  t_worker_pool = pool;
}

PoolWorkerScope::~PoolWorkerScope() { t_worker_pool = previous_; }

const void* current_pool() { return t_worker_pool; }

void on_pool_wait(const void* pool, std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.pool_wait_checks.fetch_add(1, std::memory_order_relaxed);
  if (t_worker_pool != pool) return;
  std::lock_guard lock(g.mu);
  const std::string where =
      site_string(site.file_name(), static_cast<int>(site.line()));
  if (!g.reported.insert("LD002:pool:" + where).second) return;
  Finding f;
  f.kind = HazardKind::kPoolSelfWait;
  f.file = site.file_name();
  f.line = static_cast<int>(site.line());
  f.message = "ThreadPool worker at " + where +
              " blocks on work scheduled into its own pool";
  f.details = "the awaited chunks sit behind this task in the same queue; "
              "with every worker in this position the pool deadlocks "
              "(thread " + std::to_string(this_thread_id()) + ")\n";
  record_finding(g, std::move(f));
}

void on_blocking_wait(const char* what, const void* owner_pool,
                      std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.blocking_waits.fetch_add(1, std::memory_order_relaxed);
  const std::string where =
      site_string(site.file_name(), static_cast<int>(site.line()));
  if (!t_held.empty()) {
    std::lock_guard lock(g.mu);
    if (g.reported.insert("LD003:block:" + where).second) {
      Finding f;
      f.kind = HazardKind::kWaitWhileHolding;
      f.file = site.file_name();
      f.line = static_cast<int>(site.line());
      f.message = std::string("blocking wait '") + what + "' at " + where +
                  " entered while holding: " + held_summary(g, nullptr);
      f.details = "the held lock(s) stay unavailable for as long as the "
                  "awaited result takes to arrive\n";
      record_finding(g, std::move(f));
    }
  }
  if (t_worker_pool != nullptr && t_worker_pool == owner_pool) {
    std::lock_guard lock(g.mu);
    if (g.reported.insert("LD002:flight:" + where).second) {
      Finding f;
      f.kind = HazardKind::kPoolSelfWait;
      f.is_error = false;  // safe while the owner computes inline
      f.file = site.file_name();
      f.line = static_cast<int>(site.line());
      f.message = std::string("pool worker blocks in '") + what + "' at " +
                  where + " on a result owned by its own pool";
      f.details = "safe only while the owning task never schedules work "
                  "into this pool before publishing; revisit if the "
                  "compute path grows a parallel_for\n";
      record_finding(g, std::move(f));
    }
  }
}

std::vector<Finding> findings() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  return g.findings_list;
}

std::size_t finding_count(HazardKind kind) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  std::size_t n = 0;
  for (const Finding& f : g.findings_list) {
    if (f.kind == kind) ++n;
  }
  return n;
}

CounterSnapshot counters() {
  Global& g = global();
  CounterSnapshot s;
  {
    std::lock_guard lock(g.mu);
    s.lock_classes = static_cast<long long>(g.class_names.size()) - 1;
  }
  s.acquisitions = g.acquisitions.load(std::memory_order_relaxed);
  s.order_edges = g.order_edges.load(std::memory_order_relaxed);
  s.cond_waits = g.cond_waits.load(std::memory_order_relaxed);
  s.pool_wait_checks = g.pool_wait_checks.load(std::memory_order_relaxed);
  s.blocking_waits = g.blocking_waits.load(std::memory_order_relaxed);
  s.findings_error = g.findings_error.load(std::memory_order_relaxed);
  s.findings_warning = g.findings_warning.load(std::memory_order_relaxed);
  return s;
}

bool clean() {
  return global().findings_error.load(std::memory_order_relaxed) == 0;
}

std::string format_report() {
  const CounterSnapshot s = counters();
  const std::vector<Finding> all = findings();
  char head[256];
  std::snprintf(head, sizeof head,
                "lockdep: %lld classes, %lld acquisitions, %lld order edges, "
                "%lld cond waits, %lld pool-wait checks, %lld blocking "
                "waits\n",
                s.lock_classes, s.acquisitions, s.order_edges, s.cond_waits,
                s.pool_wait_checks, s.blocking_waits);
  std::string out = head;
  if (all.empty()) {
    out += "lockdep: clean (no findings)\n";
    return out;
  }
  out += "lockdep: " + std::to_string(s.findings_error) + " error(s), " +
         std::to_string(s.findings_warning) + " warning(s)\n";
  for (const Finding& f : all) {
    out += std::string(f.is_error ? "error" : "warning") + ": [" +
           std::string(rule_id(f.kind)) + "] " + f.message + "\n";
    out += f.details;
  }
  return out;
}

void reset() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  g.graph.clear();
  g.findings_list.clear();
  g.reported.clear();
  g.acquisitions.store(0, std::memory_order_relaxed);
  g.order_edges.store(0, std::memory_order_relaxed);
  g.cond_waits.store(0, std::memory_order_relaxed);
  g.pool_wait_checks.store(0, std::memory_order_relaxed);
  g.blocking_waits.store(0, std::memory_order_relaxed);
  g.findings_error.store(0, std::memory_order_relaxed);
  g.findings_warning.store(0, std::memory_order_relaxed);
  // Thread-local seen-edge caches elsewhere go stale but only suppress
  // re-recording of edges those threads already pushed — acceptable for
  // the between-runs reset this API is for. This thread's cache clears.
  t_seen_edges.clear();
}

#endif  // SCIDOCK_LOCKDEP_ENABLED

}  // namespace scidock::lockdep
