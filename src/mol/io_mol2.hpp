#pragma once

/// \file io_mol2.hpp
/// Sybyl MOL2 reader/writer — the output format of activity 1 (Babel
/// SDF→MOL2 conversion) and the input of ligand preparation.

#include <string>
#include <string_view>

#include "mol/molecule.hpp"

namespace scidock::mol {

Molecule read_mol2(std::string_view text, std::string_view name = "");

std::string write_mol2(const Molecule& m);

}  // namespace scidock::mol
