# Empty dependencies file for scidock_bench_common.
# This may be replaced when dependencies are built.
