#pragma once

/// \file energy_lut.hpp
/// Radial energy lookup tables for the docking hot path (DESIGN.md §10).
///
/// Real AutoGrid/AutoDock precompute pairwise-energy tables once per run
/// instead of calling `exp`/`pow`/`sqrt` per atom pair per evaluation.
/// This module does the same: every scoring term that depends only on the
/// pair of AutoDock types and the distance is tabulated over *squared*
/// distance — callers feed `distance_sq` straight from the neighbour list
/// or the intramolecular pair loop and never pay the `sqrt`.
///
/// Tables are uniform in r² on [0, cutoff²] with linear interpolation
/// (kEntries bins, kEntries + 1 samples). Charge-dependent factors cannot
/// be tabulated per pair (charges vary per atom), so the electrostatic and
/// desolvation channels store the type-independent radial part and the
/// caller multiplies its precomputed charge/solvation factors in.
///
/// Accuracy: with 4096 bins over 64 Å² the interpolation error against the
/// analytic path stays below 2e-3 kcal/mol absolute outside the clamped
/// repulsive wall and below 0.5% relative inside the wells — an order of
/// magnitude under the energy differences the GA/MC search acts on. The
/// kernel-equivalence suite (`ctest -L kernels`) enforces this bound.
///
/// Table sets are immutable after construction and shared process-wide by
/// weight vector (`shared()`), so per-activation model construction costs
/// one mutex-guarded lookup instead of a rebuild.

#include <cstdint>
#include <memory>
#include <vector>

#include "dock/scoring.hpp"
#include "mol/atom_typing.hpp"
#include "util/simd.hpp"

namespace scidock::dock {

namespace lut {

/// Table resolution shared by the AD4 and Vina sets. The domain ends at
/// the 8 Å interaction cutoff both engines use; beyond it the AD4 path
/// falls back to the analytic tail and the Vina path is identically zero.
inline constexpr double kCutoff = 8.0;
inline constexpr double kCutoffSq = kCutoff * kCutoff;
inline constexpr int kEntries = 4096;

/// Linear interpolation into one channel of kEntries + 1 samples uniform
/// in r². `r2` must lie in [0, kCutoffSq].
inline double interpolate(const double* samples, double r2) {
  constexpr double kInvStep = kEntries / kCutoffSq;
  const double x = r2 * kInvStep;
  int i = static_cast<int>(x);
  if (i >= kEntries) i = kEntries - 1;  // r2 == kCutoffSq lands here
  const double t = x - static_cast<double>(i);
  return samples[i] + (samples[i + 1] - samples[i]) * t;
}

/// Triangular index of the unordered type pair (ti, tj) into a flat array
/// of kAdTypeCount * (kAdTypeCount + 1) / 2 per-pair channels.
inline int pair_index(mol::AdType ti, mol::AdType tj) {
  int lo = static_cast<int>(ti);
  int hi = static_cast<int>(tj);
  if (lo > hi) {
    const int tmp = lo;
    lo = hi;
    hi = tmp;
  }
  return lo * mol::kAdTypeCount - lo * (lo + 1) / 2 + hi;
}

inline constexpr int kPairCount =
    mol::kAdTypeCount * (mol::kAdTypeCount + 1) / 2;

/// One lane-batch of interpolation bins: every table in this module shares
/// the same resolution and domain, so the (bin, fraction) computation for a
/// vector of squared distances is done once and reused across channels —
/// the vdW row, the Coulomb channel and the desolvation Gaussian all index
/// with the same LaneBins (and in AutoGrid, so does every ligand-type row).
struct LaneBins {
  std::int32_t lo[simd::f64x::kWidth];  ///< bin index per lane
  std::int32_t hi[simd::f64x::kWidth];  ///< bin index + 1 per lane
  simd::f64x t;                         ///< blend fraction per lane
};

/// Bin/fraction computation for kWidth squared distances. Lanes must lie
/// in [0, kCutoffSq] (callers clamp or peel out-of-domain lanes first);
/// each lane reproduces the scalar interpolate() indexing exactly,
/// including the top-bin clamp at r2 == kCutoffSq.
inline LaneBins lane_bins(simd::f64x r2) {
  constexpr double kInvStep = kEntries / kCutoffSq;
  const simd::f64x x = r2 * simd::f64x(kInvStep);
  alignas(64) double xi[simd::f64x::kWidth];
  LaneBins b;
  simd::truncate_to_int(x, b.lo);
  for (int l = 0; l < simd::f64x::kWidth; ++l) {
    if (b.lo[l] >= kEntries) b.lo[l] = kEntries - 1;
    b.hi[l] = b.lo[l] + 1;
    xi[l] = static_cast<double>(b.lo[l]);
  }
  b.t = x - simd::f64x::load(xi);
  return b;
}

/// Lane-parallel linear blend from one shared channel. Same association as
/// the scalar interpolate() — a + (b - a) * t — so each lane is bit-equal
/// to the scalar path on backends without FMA contraction.
inline simd::f64x interpolate(const double* samples, const LaneBins& b) {
  const simd::f64x a = simd::gather(samples, b.lo);
  const simd::f64x c = simd::gather(samples, b.hi);
  return a + (c - a) * b.t;
}

/// Lane-parallel blend where every lane reads a different channel (one
/// vdW row per type pair): per-lane base pointers, shared bins.
inline simd::f64x interpolate_rows(const double* const* rows,
                                   const LaneBins& b) {
  alignas(64) double a[simd::f64x::kWidth];
  alignas(64) double c[simd::f64x::kWidth];
  for (int l = 0; l < simd::f64x::kWidth; ++l) {
    a[l] = rows[l][b.lo[l]];
    c[l] = rows[l][b.hi[l]];
  }
  const simd::f64x av = simd::f64x::load(a);
  const simd::f64x cv = simd::f64x::load(c);
  return av + (cv - av) * b.t;
}

}  // namespace lut

/// AD4 radial tables: one weighted vdW/H-bond channel per unordered type
/// pair plus the shared screened-Coulomb and desolvation-Gaussian
/// channels. All channels apply the kMinDistance = 0.5 Å clamp exactly
/// like the analytic path, so the sub-clamp region is constant.
class Ad4PairTables {
 public:
  explicit Ad4PairTables(const Ad4Weights& weights);

  /// Process-wide shared instance for a weight vector (built on first
  /// use, then reused by every energy model / grid calculator).
  static std::shared_ptr<const Ad4PairTables> shared(const Ad4Weights& weights);

  const Ad4Weights& weights() const { return weights_; }
  static constexpr double cutoff_sq() { return lut::kCutoffSq; }

  /// Weighted, clamped 12-6 / 12-10 well: ad4_vdw_hbond(ti, tj, sqrt(r2)).
  double vdw_hbond(mol::AdType ti, mol::AdType tj, double r2) const {
    return lut::interpolate(vdw_row(ti, tj), r2);
  }

  /// Base pointer of one pair's vdW/H-bond channel — hoist out of inner
  /// loops that evaluate many distances for a fixed type pair (AutoGrid).
  const double* vdw_row(mol::AdType ti, mol::AdType tj) const {
    return vdw_.data() +
           static_cast<std::size_t>(lut::pair_index(ti, tj)) *
               (lut::kEntries + 1);
  }

  /// w_estat * 332.06 / (eps(r) * r); multiply by q_i * q_j (or by the
  /// receptor charge for the unit-charge electrostatic map).
  double coulomb_factor(double r2) const {
    return lut::interpolate(coulomb_.data(), r2);
  }

  /// w_desolv * exp(-r² / (2 σ²)); multiply by the solvation cross terms.
  double desolv_gauss(double r2) const {
    return lut::interpolate(gauss_.data(), r2);
  }

  /// Raw channel base pointers, for callers that interleave these with
  /// per-pair vdW rows in one lane-parallel channel sweep (AutoGrid).
  const double* coulomb_channel() const { return coulomb_.data(); }
  const double* desolv_channel() const { return gauss_.data(); }

  /// Drop-in for ad4_pair_energy(ti, qi, tj, qj, sqrt(r2), weights):
  /// table path inside the cutoff, analytic tail beyond it.
  double pair_energy(mol::AdType ti, double qi, mol::AdType tj, double qj,
                     double r2) const;

  /// Lane-batched pair term: kWidth independent (pair, r²) evaluations
  /// with the distance-independent factors hoisted SoA-style. `vdw_rows`
  /// holds one vdw_row() pointer per lane, `qq` the charge products and
  /// `solv` the symmetric solvation cross terms. Every lane of `r2` must
  /// lie in [0, cutoff_sq()] — callers peel tail lanes to pair_energy().
  simd::f64x pair_energy_lanes(const double* const* vdw_rows, simd::f64x qq,
                               simd::f64x solv, simd::f64x r2) const {
    const lut::LaneBins bins = lut::lane_bins(r2);
    simd::f64x e = lut::interpolate_rows(vdw_rows, bins);
    e += qq * lut::interpolate(coulomb_.data(), bins);
    e += solv * lut::interpolate(gauss_.data(), bins);
    return e;
  }

  /// Shared-channel batch factors for callers that vectorize over
  /// same-type-pair distances (the AutoGrid point loop).
  simd::f64x coulomb_factor_lanes(const lut::LaneBins& bins) const {
    return lut::interpolate(coulomb_.data(), bins);
  }
  simd::f64x desolv_gauss_lanes(const lut::LaneBins& bins) const {
    return lut::interpolate(gauss_.data(), bins);
  }

 private:
  Ad4Weights weights_;
  std::vector<double> vdw_;      ///< kPairCount channels
  std::vector<double> coulomb_;  ///< one shared channel
  std::vector<double> gauss_;    ///< one shared channel
};

/// Vina radial tables: the full pairwise term (gauss1/gauss2/repulsion/
/// hydrophobic/h-bond on the surface distance) is charge-free, so one
/// channel per unordered type pair tabulates it completely. Zero beyond
/// the 8 Å cutoff by construction, matching the analytic truncation.
class VinaPairTables {
 public:
  explicit VinaPairTables(const VinaWeights& weights);

  static std::shared_ptr<const VinaPairTables> shared(
      const VinaWeights& weights);

  const VinaWeights& weights() const { return weights_; }
  static constexpr double cutoff_sq() { return lut::kCutoffSq; }

  /// vina_pair_energy(ti, tj, sqrt(r2)); r2 past the cutoff returns 0.
  double pair_energy(mol::AdType ti, mol::AdType tj, double r2) const {
    if (r2 >= lut::kCutoffSq) return 0.0;
    return lut::interpolate(
        pair_.data() + static_cast<std::size_t>(lut::pair_index(ti, tj)) *
                           (lut::kEntries + 1),
        r2);
  }

  /// Base pointer of one pair's channel (hoist out of neighbour loops).
  const double* row(mol::AdType ti, mol::AdType tj) const {
    return pair_.data() + static_cast<std::size_t>(lut::pair_index(ti, tj)) *
                              (lut::kEntries + 1);
  }

  /// Lane-batched pair term with per-lane row() pointers. Unlike the AD4
  /// variant this accepts any non-negative r²: lanes at or beyond the
  /// cutoff are clamped into the table domain and then masked to the
  /// analytic zero, so neighbour-block tails can pad with kCutoffSq.
  simd::f64x pair_energy_lanes(const double* const* rows,
                               simd::f64x r2) const {
    const simd::f64x cutoff(lut::kCutoffSq);
    const simd::f64x inside = simd::less_than(r2, cutoff);
    const lut::LaneBins bins = lut::lane_bins(simd::min(r2, cutoff));
    return simd::blend(inside, lut::interpolate_rows(rows, bins),
                       simd::f64x());
  }

 private:
  VinaWeights weights_;
  std::vector<double> pair_;  ///< kPairCount channels
};

}  // namespace scidock::dock
