#include "wf/sim_executor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace scidock::wf {

double SimReport::mean_activation_seconds() const {
  RunningStats all;
  for (const auto& [tag, stats] : per_activity_seconds) all.merge(stats);
  return all.mean();
}

std::vector<cloud::VmType> m3_fleet_for_cores(int virtual_cores) {
  SCIDOCK_REQUIRE(virtual_cores >= 1, "need at least one core");
  std::vector<cloud::VmType> fleet;
  int remaining = virtual_cores;
  while (remaining >= 8) {
    fleet.push_back(cloud::vm_type_m3_2xlarge());
    remaining -= 8;
  }
  while (remaining >= 4) {
    fleet.push_back(cloud::vm_type_m3_xlarge());
    remaining -= 4;
  }
  if (remaining > 0) {
    // Round up with the small instance; the simulator caps usable slots
    // at the type's core count, so a 2-core request gets a 4-core VM with
    // two slots masked.
    cloud::VmType t = cloud::vm_type_m3_xlarge();
    t.cores = remaining;
    t.name += "(partial)";
    fleet.push_back(t);
  }
  return fleet;
}

SimulatedExecutor::SimulatedExecutor(const Pipeline& pipeline,
                                     cloud::CostModel cost_model,
                                     SimExecutorOptions options)
    : pipeline_(pipeline), cost_model_(std::move(cost_model)),
      options_(std::move(options)) {
  SCIDOCK_REQUIRE(!options_.fleet.empty(), "simulated fleet is empty");
  for (const Stage& st : pipeline.stages()) {
    SCIDOCK_REQUIRE(cost_model_.has(st.tag),
                    "cost model has no entry for stage '" + st.tag + "'");
  }
}

SimReport SimulatedExecutor::run(const Relation& input,
                                 prov::ProvenanceStore* prov,
                                 const std::string& workflow_tag) {
  cloud::Simulation sim;
  Rng rng(options_.seed);
  Rng failure_rng = rng.fork("failures");
  Rng duration_rng = rng.fork("durations");
  cloud::VirtualCluster cluster(sim, rng.fork("cluster"));
  const cloud::FailureModel failure_model(options_.failure);
  const auto scheduler = make_scheduler(options_.scheduler_policy);

  const obs::ExecutorCounters counters =
      obs::executor_counters(options_.obs.metrics);
  obs::TraceRecorder* const trace = options_.obs.trace;

  SimReport report;

  // ---- provenance bootstrap ----
  long long wkfid = 0;
  std::map<std::string, long long> actids;
  if (prov != nullptr) {
    wkfid = prov->begin_workflow(workflow_tag, "simulated execution",
                                 "/root/exp_" + workflow_tag + "/", 0.0);
    for (const Stage& st : pipeline_.stages()) {
      actids[st.tag] = prov->register_activity(
          wkfid, st.tag, "./experiment.cmd", std::string(to_string(st.op)));
    }
  }

  // ---- tuple state ----
  struct TupleState {
    std::vector<std::string> chain;
    std::size_t stage = 0;
    int attempts_at_stage = 0;
    bool lost = false;
  };
  std::vector<TupleState> tuples;
  tuples.reserve(input.size());
  for (const Tuple& t : input.tuples()) {
    tuples.push_back(TupleState{pipeline_.chain_for(t), 0, 0, false});
  }

  // ---- scheduling state ----
  std::vector<PendingActivation> queue;
  std::map<long long, std::size_t> act_to_tuple;
  long long next_act_id = 1;
  std::map<long long, int> free_slots;  ///< usable (booted) VM -> free cores
  long long busy = 0;                   ///< in-flight activations
  long long completed_tuples = 0;

  auto tuple_of = [&input](std::size_t idx) -> const Tuple& {
    return input.tuples()[idx];
  };

  auto stage_for = [&](std::size_t tuple_idx) -> const Stage& {
    const TupleState& ts = tuples[tuple_idx];
    return pipeline_.stage(ts.chain[ts.stage]);
  };

  auto enqueue = [&](std::size_t tuple_idx) {
    const TupleState& ts = tuples[tuple_idx];
    const Stage& st = stage_for(tuple_idx);
    const double scale =
        st.workload_scale ? st.workload_scale(tuple_of(tuple_idx)) : 1.0;
    PendingActivation pa;
    pa.id = next_act_id++;
    pa.activity_tag = st.tag;
    pa.expected_cost_s = cost_model_.expected(st.tag, scale, 1.0);
    pa.attempts = ts.attempts_at_stage;
    act_to_tuple[pa.id] = tuple_idx;
    queue.push_back(std::move(pa));
  };

  for (std::size_t i = 0; i < tuples.size(); ++i) enqueue(i);

  // Forward declaration dance: dispatch is invoked from event handlers.
  std::function<void()> dispatch;
  // The engine's central scheduler is serial: each dispatch decision
  // occupies it for the planning overhead, and a slot whose decision is
  // queued behind others stays idle meanwhile (paper SS V.C).
  double scheduler_free_at = 0.0;

  auto io_bytes_for = [&](const std::string& tag) -> std::size_t {
    const auto it = options_.io_bytes.find(tag);
    return it == options_.io_bytes.end() ? options_.default_io_bytes : it->second;
  };

  auto on_complete = [&](long long act_id, long long vm_id,
                         cloud::ActivationOutcome outcome, double started,
                         bool no_retry) {
    const std::size_t tuple_idx = act_to_tuple.at(act_id);
    act_to_tuple.erase(act_id);
    TupleState& ts = tuples[tuple_idx];
    const std::string tag = ts.chain[ts.stage];
    // The attempt number of the activation that just completed; captured
    // before the counter is reset (success) or advanced (failure) so
    // provenance and the report see the real 1-based attempt.
    const int attempt = ts.attempts_at_stage + 1;
    --busy;
    ++free_slots[vm_id];

    const double duration = sim.now() - started;
    std::string status;
    switch (outcome) {
      case cloud::ActivationOutcome::Success: {
        status = std::string(prov::kStatusFinished);
        ++report.activations_finished;
        report.per_activity_seconds[tag].add(duration);
        ts.attempts_at_stage = 0;
        ++ts.stage;
        if (ts.stage >= ts.chain.size()) {
          ++completed_tuples;
          ++report.tuples_completed;
          if (counters.tuples_completed != nullptr) {
            counters.tuples_completed->inc();
          }
        } else {
          enqueue(tuple_idx);
        }
        break;
      }
      case cloud::ActivationOutcome::Failure:
      case cloud::ActivationOutcome::Hang: {
        const bool hang = outcome == cloud::ActivationOutcome::Hang;
        status = hang ? std::string(prov::kStatusAborted)
                      : std::string(prov::kStatusFailed);
        if (hang) ++report.activations_hung;
        else ++report.activations_failed;
        ++ts.attempts_at_stage;
        const bool retry = !no_retry && options_.reexecute_failures &&
                           ts.attempts_at_stage < options_.failure.max_attempts;
        if (retry) {
          enqueue(tuple_idx);
        } else {
          ts.lost = true;
          ++completed_tuples;
          ++report.tuples_lost;
          if (counters.tuples_lost != nullptr) counters.tuples_lost->inc();
        }
        break;
      }
    }
    if (prov != nullptr) {
      const long long taskid = prov->begin_activation(
          actids[tag], wkfid, started, vm_id,
          tuple_of(tuple_idx).get("pair").value_or(""));
      prov->end_activation(taskid, sim.now(), status,
                           status == prov::kStatusFinished ? 0 : 1, attempt);
    }
    // One counter bump per attempt, mirroring the one hactivation row
    // above so reconciliation holds row for row.
    if (counters.started != nullptr) {
      counters.started->inc();
      if (attempt > 1) counters.retried->inc();
      if (status == prov::kStatusFinished) {
        counters.finished->inc();
        counters.activation_seconds->observe(duration);
      } else if (status == prov::kStatusAborted) {
        counters.aborted->inc();
      } else {
        counters.failed->inc();
      }
    }
    if (trace != nullptr) {
      trace->complete_span(tag, "activation", started * 1e6, duration * 1e6,
                           vm_id,
                           {{"tuple", std::to_string(tuple_idx)},
                            {"attempt", std::to_string(attempt)},
                            {"status", status}});
      if (status != prov::kStatusFinished) {
        trace->instant(status == prov::kStatusAborted ? "activation-hang"
                                                      : "activation-failure",
                       "fault", sim.now() * 1e6, vm_id);
      }
    }
    if (report.records.size() < 500000) {
      report.records.push_back(SimActivationRecord{
          tag, tuple_idx, started, sim.now(), vm_id, attempt, status});
    }
    dispatch();
  };

  dispatch = [&]() {
    for (;;) {
      if (queue.empty()) return;
      // Fastest usable VM with a free slot takes work first (the greedy
      // policy's "powerful VMs get the long activations").
      long long best_vm = -1;
      double best_slowdown = 0.0;
      for (const auto& [vm_id, slots] : free_slots) {
        if (slots <= 0) continue;
        const double sd = cluster.instance(vm_id).slowdown();
        if (best_vm < 0 || sd < best_slowdown) {
          best_vm = vm_id;
          best_slowdown = sd;
        }
      }
      if (best_vm < 0) return;  // everything busy

      const cloud::VmInstance& vm = cluster.instance(best_vm);
      const std::size_t pick = scheduler->pick(queue, vm);
      const PendingActivation pa = std::move(queue[pick]);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

      const std::size_t tuple_idx = act_to_tuple.at(pa.id);
      const Stage& st = pipeline_.stage(pa.activity_tag);
      const Tuple& tup = tuple_of(tuple_idx);

      double overhead = 0.0;
      if (options_.charge_scheduler_overhead) {
        const double planning = cost_model_.scheduling_overhead(
            queue.size() + 1, static_cast<std::size_t>(cluster.alive_count()));
        const double start_planning = std::max(sim.now(), scheduler_free_at);
        scheduler_free_at = start_planning + planning;
        // The slot idles from now until the serial scheduler finishes its
        // plan for this activation.
        overhead = scheduler_free_at - sim.now();
        report.scheduling_overhead_s += overhead;
      }
      double staging = 0.0;
      if (options_.charge_data_staging) {
        const std::size_t bytes = io_bytes_for(pa.activity_tag);
        staging = options_.fs_latency.read_cost(bytes) +
                  options_.fs_latency.write_cost(bytes);
        report.data_staging_s += staging;
      }

      const double scale = st.workload_scale ? st.workload_scale(tup) : 1.0;
      const double service =
          cost_model_.sample(pa.activity_tag, scale, vm.slowdown(), duration_rng);

      const bool hazard = st.hazard && st.hazard(tup);
      const bool preabort = hazard && options_.preabort_hazards;
      const cloud::ActivationOutcome outcome =
          failure_model.sample(failure_rng, hazard);

      double busy_time = overhead + staging;
      if (preabort) {
        // Hazard recognised up-front: the activation is aborted before it
        // can enter the looping state; no service time is burned and the
        // tuple is not retried (its input will always hang).
        --free_slots[best_vm];
        ++busy;
        const double started = sim.now();
        const long long act_id = pa.id;
        const long long vm_id = best_vm;
        sim.schedule_after(overhead, [&, act_id, vm_id, started] {
          on_complete(act_id, vm_id, cloud::ActivationOutcome::Hang, started,
                      /*no_retry=*/true);
        });
        continue;
      }
      switch (outcome) {
        case cloud::ActivationOutcome::Success:
          busy_time += service;
          break;
        case cloud::ActivationOutcome::Failure:
          // Crashes surface partway through the run.
          busy_time += service * failure_rng.uniform(0.2, 1.0);
          break;
        case cloud::ActivationOutcome::Hang:
          // Looping state: the slot is stuck until the watchdog aborts it.
          busy_time += options_.failure.hang_timeout_s;
          break;
      }

      --free_slots[best_vm];
      ++busy;
      const double started = sim.now();
      const long long act_id = pa.id;
      const long long vm_id = best_vm;
      sim.schedule_after(busy_time, [&, act_id, vm_id, outcome, started] {
        on_complete(act_id, vm_id, outcome, started, /*no_retry=*/false);
      });
    }
  };

  // Provisioning instrumentation shared by the initial fleet and the
  // elasticity controller: a "vm-boot" span covering acquire -> usable.
  auto observe_acquire = [&](long long id, const cloud::VmType& type,
                             double acquired_at, double boot_completed_at) {
    if (options_.obs.metrics != nullptr) {
      options_.obs.metrics
          ->counter("scidock_cloud_vms_acquired_total",
                    "VM acquisitions (boot requested)")
          .inc();
    }
    if (trace != nullptr) {
      trace->complete_span("vm-boot", "cloud", acquired_at * 1e6,
                           (boot_completed_at - acquired_at) * 1e6, id,
                           {{"type", type.name},
                            {"cores", std::to_string(type.cores)}});
    }
  };

  // ---- boot the initial fleet ----
  for (const cloud::VmType& type : options_.fleet) {
    const long long id = cluster.acquire(type);
    const cloud::VmInstance& vm = cluster.instance(id);
    const int cores = type.cores;
    observe_acquire(id, type, sim.now(), vm.boot_completed_at);
    sim.schedule_at(vm.boot_completed_at, [&, id, cores] {
      free_slots[id] = cores;
      dispatch();
    });
    if (prov != nullptr) {
      prov->record_machine(id, type.name, type.cores, vm.slowdown());
    }
  }

  // ---- elasticity controller ----
  std::function<void()> controller;
  controller = [&] {
    if (completed_tuples >= static_cast<long long>(tuples.size())) return;
    const int alive = cluster.alive_count();
    const int cores_per_vm = std::max(1, options_.elastic_vm_type.cores);
    const int target = std::clamp(
        static_cast<int>(queue.size()) / (4 * cores_per_vm) + options_.min_vms,
        options_.min_vms, options_.max_vms);
    if (alive < target) {
      const long long id = cluster.acquire(options_.elastic_vm_type);
      const cloud::VmInstance& vm = cluster.instance(id);
      const int cores = options_.elastic_vm_type.cores;
      observe_acquire(id, options_.elastic_vm_type, sim.now(),
                      vm.boot_completed_at);
      sim.schedule_at(vm.boot_completed_at, [&, id, cores] {
        free_slots[id] = cores;
        dispatch();
      });
    } else if (alive > target) {
      // Release one fully idle VM per tick (graceful scale-down).
      for (auto it = free_slots.begin(); it != free_slots.end(); ++it) {
        const cloud::VmInstance& vm = cluster.instance(it->first);
        if (vm.alive() && it->second == vm.type.cores && alive > options_.min_vms) {
          cluster.release(it->first);
          if (options_.obs.metrics != nullptr) {
            options_.obs.metrics
                ->counter("scidock_cloud_vms_released_total",
                          "VMs released by the elasticity controller")
                .inc();
          }
          if (trace != nullptr) {
            trace->instant("vm-release", "cloud", sim.now() * 1e6, it->first);
          }
          free_slots.erase(it);
          break;
        }
      }
    }
    sim.schedule_after(options_.elasticity_period_s, controller);
  };
  if (options_.elasticity) {
    SCIDOCK_REQUIRE(options_.elastic_vm_type.cores > 0,
                    "elasticity requires elastic_vm_type");
    sim.schedule_after(options_.elasticity_period_s, controller);
  }

  sim.run();

  SCIDOCK_ASSERT_MSG(busy == 0 && queue.empty(),
                     "simulation drained with work outstanding");
  report.total_execution_time_s = sim.now();
  report.cloud_cost_usd = cluster.accumulated_cost_usd();
  report.peak_alive_vms = static_cast<int>(cluster.instances().size());
  report.total_cores = cluster.total_cores();
  if (prov != nullptr) prov->end_workflow(wkfid, sim.now());

  // Placement / utilisation summary series (whole-run, not per event).
  if (options_.obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.obs.metrics;
    const SchedulerStats& ss = scheduler->stats();
    m.counter("scidock_sched_picks_total", "scheduler placement decisions")
        .inc(ss.picks);
    m.counter("scidock_sched_reexecution_picks_total",
              "placements of re-executed activations")
        .inc(ss.reexecution_picks);
    m.gauge("scidock_sched_mean_queue_length",
            "mean ready-queue length at placement time")
        .set(ss.mean_queue_length());
    m.gauge("scidock_sched_overhead_seconds",
            "summed serial planning time charged to slots")
        .set(report.scheduling_overhead_s);
    m.gauge("scidock_cloud_cost_usd", "accumulated VM cost")
        .set(report.cloud_cost_usd);
    m.gauge("scidock_cloud_total_cores", "cores across acquired VMs")
        .set(static_cast<double>(report.total_cores));
    // Utilisation: busy core-seconds over available core-seconds (the
    // figure-9 efficiency denominator).
    double busy_core_s = 0.0;
    for (const auto& [tag, stats] : report.per_activity_seconds) {
      busy_core_s += stats.sum();
    }
    const double capacity_s =
        report.total_execution_time_s * static_cast<double>(report.total_cores);
    m.gauge("scidock_cloud_vm_utilisation",
            "busy core-seconds / available core-seconds")
        .set(capacity_s > 0.0 ? busy_core_s / capacity_s : 0.0);
  }
  return report;
}

}  // namespace scidock::wf
