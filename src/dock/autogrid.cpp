#include "dock/autogrid.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scidock::dock {

GridMapCalculator::GridMapCalculator(const mol::Molecule& receptor,
                                     AutogridOptions opts)
    : receptor_(receptor), opts_(opts),
      tables_(Ad4PairTables::shared(opts.weights)),
      neighbors_(receptor, opts.cutoff) {
  SCIDOCK_ASSERT_MSG(receptor.perceived(), "prepare the receptor before AutoGrid");
  // The LUT domain ends at lut::kCutoff; a wider neighbour cutoff would
  // hand the interpolator out-of-domain squared distances.
  SCIDOCK_ASSERT_MSG(opts.cutoff <= lut::kCutoff,
                     "AutoGrid cutoff exceeds the energy-LUT domain");
  const int n = receptor.atom_count();
  charge_.reserve(static_cast<std::size_t>(n));
  volume_.reserve(static_cast<std::size_t>(n));
  type_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const mol::Atom& a = receptor.atom(i);
    charge_.push_back(a.partial_charge);
    volume_.push_back(mol::ad_type_params(a.ad_type).volume);
    type_.push_back(a.ad_type);
  }
}

GridMapSet GridMapCalculator::calculate(
    const GridBox& box, const std::vector<mol::AdType>& ligand_types,
    ThreadPool* pool) const {
  GridMapSet set;
  set.box = box;
  set.electrostatic = GridMap(box, "e");
  set.desolvation = GridMap(box, "d");
  for (mol::AdType t : ligand_types) {
    set.affinity.emplace_back(t, GridMap(box, std::string(mol::ad_type_name(t))));
  }

  // Hoist every per-(receptor atom) LUT channel to a flat pointer array,
  // SoA by atom: slot 0 is the Coulomb channel (factor = atom charge),
  // slot 1 the desolvation Gaussian (factor = atom volume), slots 2.. the
  // per-ligand-type vdW rows (factor = 1), padded to a lane multiple with
  // an all-zero channel. Every table shares the LUT resolution, so the
  // inner loop computes one LaneBins per (point, atom) squared distance
  // and sweeps all channels with lane-parallel interpolations — where the
  // scalar loop paid one bin computation per channel per contribution.
  constexpr int W = simd::f64x::kWidth;
  const std::size_t natoms = type_.size();
  const std::size_t ntypes = ligand_types.size();
  const std::size_t nchan = ntypes + 2;
  const std::size_t nchan_padded = (nchan + W - 1) / W * W;
  const std::vector<double> zero_channel(lut::kEntries + 1, 0.0);
  std::vector<const double*> rows(natoms * nchan_padded, zero_channel.data());
  util::aligned_vector<double> factors(natoms * nchan_padded, 0.0);
  for (std::size_t a = 0; a < natoms; ++a) {
    const std::size_t base = a * nchan_padded;
    rows[base + 0] = tables_->coulomb_channel();
    factors[base + 0] = charge_[a];
    // Receptor-side volume term only; the ligand atom's solvation
    // parameter (solpar_i + qasp*|q_i|) multiplies in at sample time
    // (AD4 map semantics; the product is O(0.01) per contact).
    rows[base + 1] = tables_->desolv_channel();
    factors[base + 1] = volume_[a];
    for (std::size_t t = 0; t < ntypes; ++t) {
      rows[base + 2 + t] = tables_->vdw_row(ligand_types[t], type_[a]);
      factors[base + 2 + t] = 1.0;
    }
  }

  const mol::Vec3 origin = box.origin();

  // Racer (RC004) reduction identity for this map set: deterministic
  // across runs (never an address) and distinct across the receptors and
  // boxes of one campaign, so per-slab digests from different calculate()
  // calls never collide on a key.
  std::uint64_t racer_set_key = 0;
  if (racer::enabled()) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto fold = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ULL;
    };
    fold(std::bit_cast<std::uint64_t>(origin.x));
    fold(std::bit_cast<std::uint64_t>(origin.y));
    fold(std::bit_cast<std::uint64_t>(origin.z));
    fold(std::bit_cast<std::uint64_t>(box.spacing));
    fold(static_cast<std::uint64_t>(box.npts[0]));
    fold(static_cast<std::uint64_t>(box.npts[1]));
    fold(static_cast<std::uint64_t>(box.npts[2]));
    fold(natoms);
    fold(ntypes);
    for (std::size_t a = 0; a < natoms; ++a) {
      fold(std::bit_cast<std::uint64_t>(charge_[a]));
    }
    racer_set_key = h;
  }

  // One z-slab: every write lands in the slab's own index range of each
  // map, so slabs compute independently and the result is bit-identical
  // across thread counts.
  const auto slab = [&](std::size_t slab_iz) {
    const int iz = static_cast<int>(slab_iz);
    util::aligned_vector<double> acc(nchan_padded, 0.0);
    for (int iy = 0; iy < box.npts[1]; ++iy) {
      for (int ix = 0; ix < box.npts[0]; ++ix) {
        const mol::Vec3 p{origin.x + ix * box.spacing,
                          origin.y + iy * box.spacing,
                          origin.z + iz * box.spacing};
        std::fill(acc.begin(), acc.end(), 0.0);

        neighbors_.for_each_within(p, [&](int ai, double d2) {
          const auto a = static_cast<std::size_t>(ai);
          // Broadcast bins: one (bin, fraction) computation serves every
          // channel. Each accumulator lane adds factor * interpolate in
          // the scalar loop's per-atom order, so the maps stay
          // bit-identical to the unbatched path.
          const lut::LaneBins bins = lut::lane_bins(simd::f64x(d2));
          const double* const* row = rows.data() + a * nchan_padded;
          const double* factor = factors.data() + a * nchan_padded;
          for (std::size_t c = 0; c < nchan_padded; c += W) {
            simd::f64x sum = simd::f64x::load(acc.data() + c);
            sum += simd::f64x::load(factor + c) *
                   lut::interpolate_rows(row + c, bins);
            sum.store(acc.data() + c);
          }
        });

        set.electrostatic.at(ix, iy, iz) = acc[0];
        set.desolvation.at(ix, iy, iz) = acc[1];
        for (std::size_t t = 0; t < ntypes; ++t) {
          set.affinity[t].second.at(ix, iy, iz) = acc[2 + t];
        }
      }
    }

    // Racer determinism digest: the slab's full content, keyed by
    // (map-set identity, iz). If a SIMD or threading change makes any
    // slab's bits depend on the schedule, comparing snapshots across
    // thread counts yields an RC004 naming this reduction and slab.
    if (racer::enabled()) {
      std::uint64_t h = 1469598103934665603ULL;
      const auto fold = [&h](double v) {
        h = (h ^ std::bit_cast<std::uint64_t>(v)) * 1099511628211ULL;
      };
      for (int iy = 0; iy < box.npts[1]; ++iy) {
        for (int ix = 0; ix < box.npts[0]; ++ix) {
          fold(set.electrostatic.at(ix, iy, iz));
          fold(set.desolvation.at(ix, iy, iz));
          for (std::size_t t = 0; t < ntypes; ++t) {
            fold(set.affinity[t].second.at(ix, iy, iz));
          }
        }
      }
      racer::on_reduction(
          "dock.autogrid.slab_merge",
          racer_set_key ^ (0x9e3779b97f4a7c15ULL * (slab_iz + 1)), h);
    }
  };

  const auto timed_slab = [&](std::size_t iz) {
    if (!opts_.slab_observer) {
      slab(iz);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    slab(iz);
    opts_.slab_observer(
        static_cast<int>(iz),
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  };

  const auto nz = static_cast<std::size_t>(box.npts[2]);
  if (pool != nullptr && pool->thread_count() > 1 && nz > 1) {
    // A couple of chunks per worker balances load (outer slabs see fewer
    // receptor atoms) without paying one dispatch per slab.
    const std::size_t grain =
        std::max<std::size_t>(1, nz / (pool->thread_count() * 4));
    pool->parallel_for(nz, timed_slab, grain);
  } else {
    for (std::size_t iz = 0; iz < nz; ++iz) timed_slab(iz);
  }
  return set;
}

std::string GridParameterFile::to_text() const {
  std::string out;
  out += strformat("npts %d %d %d\n", box.npts[0] - 1, box.npts[1] - 1,
                   box.npts[2] - 1);
  out += "gridfld receptor.maps.fld\n";
  out += strformat("spacing %.4f\n", box.spacing);
  std::string types;
  for (mol::AdType t : ligand_types) {
    if (!types.empty()) types += ' ';
    types += std::string(mol::ad_type_name(t));
  }
  out += "ligand_types " + types + "\n";
  out += "receptor " + receptor_file + "\n";
  out += strformat("gridcenter %.3f %.3f %.3f\n", box.center.x, box.center.y,
                   box.center.z);
  for (mol::AdType t : ligand_types) {
    out += "map receptor." + std::string(mol::ad_type_name(t)) + ".map\n";
  }
  out += "elecmap receptor.e.map\ndsolvmap receptor.d.map\n";
  out += "dielectric -0.1465\n";
  return out;
}

GridParameterFile GridParameterFile::parse(std::string_view text) {
  GridParameterFile gpf;
  std::istringstream in{std::string(text)};
  std::string line;
  bool saw_npts = false;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    if (fields.empty() || fields[0][0] == '#') continue;
    if (fields[0] == "npts" && fields.size() >= 4) {
      gpf.box.npts = {static_cast<int>(parse_int(fields[1], "gpf npts")) + 1,
                      static_cast<int>(parse_int(fields[2], "gpf npts")) + 1,
                      static_cast<int>(parse_int(fields[3], "gpf npts")) + 1};
      saw_npts = true;
    } else if (fields[0] == "spacing" && fields.size() >= 2) {
      gpf.box.spacing = parse_double(fields[1], "gpf spacing");
    } else if (fields[0] == "gridcenter" && fields.size() >= 4) {
      gpf.box.center = {parse_double(fields[1], "gpf center"),
                        parse_double(fields[2], "gpf center"),
                        parse_double(fields[3], "gpf center")};
    } else if (fields[0] == "ligand_types") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const auto t = mol::ad_type_from_name(fields[i]);
        if (!t) throw ParseError("GPF", "unknown ligand type " + fields[i]);
        gpf.ligand_types.push_back(*t);
      }
    } else if (fields[0] == "receptor" && fields.size() >= 2) {
      gpf.receptor_file = fields[1];
    }
  }
  if (!saw_npts) throw ParseError("GPF", "missing npts record");
  return gpf;
}

GridParameterFile make_gpf(const mol::Molecule& receptor,
                           const mol::Molecule& ligand, double box_padding,
                           double spacing) {
  GridParameterFile gpf;
  const double half_extent =
      std::max(ligand.radius_of_gyration() * 2.0 + box_padding, 8.0);
  gpf.box = GridBox::around(receptor.center(), half_extent, spacing);
  {
    mol::Molecule lig = ligand;
    lig.perceive();
    gpf.ligand_types = lig.ad_types_present();
  }
  gpf.receptor_file = receptor.name() + ".pdbqt";
  gpf.ligand_file = ligand.name() + ".pdbqt";
  return gpf;
}

GridParameterFile make_screening_gpf(const mol::Molecule& receptor,
                                     const mol::Molecule& ligand,
                                     double box_padding, double spacing,
                                     double min_half_extent, double quantum) {
  GridParameterFile gpf = make_gpf(receptor, ligand, box_padding, spacing);
  double half_extent =
      std::max(ligand.radius_of_gyration() * 2.0 + box_padding, 8.0);
  // Canonicalise: floor + round up to the quantum so every drug-like
  // ligand of a campaign lands on the same box for a given receptor.
  half_extent = std::max(half_extent, min_half_extent);
  half_extent = std::ceil(half_extent / quantum) * quantum;
  gpf.box = GridBox::around(receptor.center(), half_extent, spacing);
  gpf.ligand_types = screening_ligand_types();
  return gpf;
}

const std::vector<mol::AdType>& screening_ligand_types() {
  static const std::vector<mol::AdType> types = [] {
    std::vector<mol::AdType> out;
    for (int i = 0; i < mol::kAdTypeCount; ++i) {
      const auto t = static_cast<mol::AdType>(i);
      if (mol::ad_type_params(t).supported) out.push_back(t);
    }
    return out;
  }();
  return types;
}

}  // namespace scidock::dock
