// Racer overhead gate: the full native screen (default 10 receptors x
// 42 ligands, the paper's Table 2 dataset) with the happens-before race
// analyzer enabled must stay within SCIDOCK_RACER_MAX_OVERHEAD_PCT
// (default 10%) of the baseline — the design goal that race checking is
// cheap enough to run on every CI sweep (DESIGN.md §14). The budget is
// double lockdep's 5%: every tracked access pays a shadow-state check,
// not just every lock acquisition.
//
// The baseline uses the analyzer's runtime kill-switch
// (racer::set_enabled(false)): both runs execute the *same binary*, so
// the comparison isolates the vector-clock bookkeeping, not codegen
// differences. In builds without -DSCIDOCK_RACER=ON the two modes are
// byte-identical no-ops; the bench still runs (harness bit-rot check),
// records compiled_in=false and skips the gate.
//
// Knobs: SCIDOCK_RACER_RECEPTORS / _LIGANDS / _THREADS / _REPS and
// _MAX_OVERHEAD_PCT. The minimum wall time over reps is used — it
// cancels scheduler noise better than the mean on shared CI machines.
//
// Writes BENCH_racer.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/experiment.hpp"
#include "util/racer.hpp"
#include "util/strings.hpp"

namespace {

using namespace scidock;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::string> take(const std::vector<std::string>& all, int n) {
  const std::size_t count =
      std::min(all.size(), static_cast<std::size_t>(std::max(n, 1)));
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count)};
}

/// One full native screen over a freshly staged experiment (fresh VFS and
/// grid-map cache each time, so neither mode inherits the other's warm
/// caches). Returns (wall seconds, output rows).
std::pair<double, std::size_t> run_screen(
    const std::vector<std::string>& receptors,
    const std::vector<std::string>& ligands, int threads) {
  core::Experiment exp = core::make_experiment(receptors, ligands, 0);
  const auto t0 = std::chrono::steady_clock::now();
  const wf::NativeReport report = core::run_native(exp, threads);
  return {wall_seconds_since(t0), report.output.size()};
}

}  // namespace

int main() {
  bench::print_header("SciDock bench: racer overhead",
                      "design goal: race checking cheap enough to leave on");

  const int n_receptors = bench::env_int("SCIDOCK_RACER_RECEPTORS", 10);
  const int n_ligands = bench::env_int("SCIDOCK_RACER_LIGANDS", 42);
  const int threads = bench::env_int("SCIDOCK_RACER_THREADS", 4);
  const int reps = bench::env_int("SCIDOCK_RACER_REPS", 3);
  const int max_overhead_pct =
      bench::env_int("SCIDOCK_RACER_MAX_OVERHEAD_PCT", 10);
  const std::vector<std::string> receptors =
      take(data::table2_receptors(), n_receptors);
  const std::vector<std::string> ligands = take(data::table2_ligands(),
                                                n_ligands);
  std::printf("workload: %zu receptors x %zu ligands, %d threads, %d reps, "
              "gate < %d%%, analyzer %s\n\n",
              receptors.size(), ligands.size(), threads, reps,
              max_overhead_pct,
              racer::compiled_in() ? "compiled in" : "compiled out");

  double wall_off = 0.0;
  double wall_on = 0.0;
  std::size_t rows_off = 0;
  std::size_t rows_on = 0;
  std::printf("%4s | %12s | %12s\n", "rep", "wall off", "wall on");
  std::printf("-----+--------------+-------------\n");
  for (int rep = 0; rep < reps; ++rep) {
    racer::set_enabled(false);
    const auto [off_s, off_rows] = run_screen(receptors, ligands, threads);
    racer::set_enabled(true);
    const auto [on_s, on_rows] = run_screen(receptors, ligands, threads);
    wall_off = rep == 0 ? off_s : std::min(wall_off, off_s);
    wall_on = rep == 0 ? on_s : std::min(wall_on, on_s);
    rows_off = off_rows;
    rows_on = on_rows;
    std::printf("%4d | %11.3fs | %11.3fs\n", rep, off_s, on_s);
  }

  if (rows_on != rows_off || rows_on == 0) {
    std::fprintf(stderr,
                 "FAIL: modes disagree on the screen itself (%zu vs %zu "
                 "output rows)\n",
                 rows_off, rows_on);
    return 1;
  }
  // The instrumented runs must also end race-free: ANY error-severity
  // finding here is a genuine concurrency regression in the product.
  if (!racer::clean()) {
    std::fprintf(stderr, "FAIL: racer found races during the bench:\n%s",
                 racer::format_report().c_str());
    return 1;
  }

  const racer::CounterSnapshot counters = racer::counters();
  const double overhead_pct =
      wall_off > 0.0 ? 100.0 * (wall_on - wall_off) / wall_off : 0.0;
  std::printf("\n%lld reads + %lld writes checked over %lld cells, "
              "%lld mutex + %lld task + %lld hb edges, %lld reduction "
              "records, %lld warnings; overhead %.2f%% (gate < %d%%)\n",
              counters.reads, counters.writes, counters.cells,
              counters.mutex_edges, counters.task_edges, counters.hb_edges,
              counters.reduction_records, counters.findings_warning,
              overhead_pct, max_overhead_pct);

  const std::string path = bench::write_bench_json(
      "racer",
      {
          {"compiled_in", racer::compiled_in() ? "true" : "false"},
          {"receptors", strformat("%zu", receptors.size())},
          {"ligands", strformat("%zu", ligands.size())},
          {"threads", strformat("%d", threads)},
          {"reps", strformat("%d", reps)},
          {"output_rows", strformat("%zu", rows_on)},
          {"wall_off_s", strformat("%.4f", wall_off)},
          {"wall_on_s", strformat("%.4f", wall_on)},
          {"cells", strformat("%lld", counters.cells)},
          {"reads", strformat("%lld", counters.reads)},
          {"writes", strformat("%lld", counters.writes)},
          {"mutex_edges", strformat("%lld", counters.mutex_edges)},
          {"task_edges", strformat("%lld", counters.task_edges)},
          {"hb_edges", strformat("%lld", counters.hb_edges)},
          {"reduction_records", strformat("%lld", counters.reduction_records)},
          {"findings_error", strformat("%lld", counters.findings_error)},
          {"findings_warning", strformat("%lld", counters.findings_warning)},
          {"racer_overhead_pct", strformat("%.3f", overhead_pct)},
          {"overhead_gate_pct", strformat("%d", max_overhead_pct)},
      });
  if (path.empty()) return 1;
  std::printf("wrote %s\n", path.c_str());

  if (!racer::compiled_in()) {
    std::printf("racer compiled out: overhead gate skipped "
                "(both modes ran the same code)\n");
    return 0;
  }
  if (overhead_pct >= static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr, "FAIL: racer overhead %.2f%% >= %d%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
