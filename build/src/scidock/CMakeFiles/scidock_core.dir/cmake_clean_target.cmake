file(REMOVE_RECURSE
  "libscidock_core.a"
)
