file(REMOVE_RECURSE
  "CMakeFiles/scidock_cloud.dir/cluster.cpp.o"
  "CMakeFiles/scidock_cloud.dir/cluster.cpp.o.d"
  "CMakeFiles/scidock_cloud.dir/cost_model.cpp.o"
  "CMakeFiles/scidock_cloud.dir/cost_model.cpp.o.d"
  "CMakeFiles/scidock_cloud.dir/failure.cpp.o"
  "CMakeFiles/scidock_cloud.dir/failure.cpp.o.d"
  "CMakeFiles/scidock_cloud.dir/sim.cpp.o"
  "CMakeFiles/scidock_cloud.dir/sim.cpp.o.d"
  "CMakeFiles/scidock_cloud.dir/vm.cpp.o"
  "CMakeFiles/scidock_cloud.dir/vm.cpp.o.d"
  "libscidock_cloud.a"
  "libscidock_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
