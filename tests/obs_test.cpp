// Observability suite (ctest label: obs).
//
// Three layers of evidence that the tracing/metrics subsystem tells the
// truth:
//   1. unit checks on MetricsRegistry / TraceRecorder / the Chrome JSON
//      round-trip (the export is proven loadable by parsing it back);
//   2. golden-trace tests — a pinned-seed workflow must produce exactly
//      one well-nested span per activation attempt, with statuses in the
//      span args, for both executors;
//   3. provenance reconciliation — across a chaos-seed sweep the
//      scidock_executor_* counters must equal SQL counts over the
//      PROV-Wf store (InvariantChecker::check_metrics), with a tampered
//      store as the negative control.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <thread>

#include "chaos/chaos.hpp"
#include "chaos/invariants.hpp"
#include "cloud/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "prov/prov.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "vfs/vfs.hpp"
#include "wf/native_executor.hpp"
#include "wf/pipeline.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::obs {
namespace {

using chaos::ChaosEngine;
using chaos::InvariantChecker;
using chaos::RunSummary;
using wf::ActivationContext;
using wf::AlgebraicOp;
using wf::Pipeline;
using wf::Relation;
using wf::Stage;
using wf::Tuple;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("scidock_test_events_total", "events");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(reg.counter_value("scidock_test_events_total"), 5);
  EXPECT_EQ(reg.counter_value("scidock_never_registered_total"), 0);

  Gauge& g = reg.gauge("scidock_test_depth");
  g.set(3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  HistogramMetric& h = reg.histogram("scidock_test_seconds", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  ASSERT_EQ(h.bucket_count(), 3u);  // 1, 10, +Inf
  EXPECT_EQ(h.bucket_value(0), 1);
  EXPECT_EQ(h.bucket_value(1), 1);
  EXPECT_EQ(h.bucket_value(2), 1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(Metrics, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("scidock_test_total");
  Counter& b = reg.counter("scidock_test_total");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, NameAndKindViolationsThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("Bad-Name"), InvalidStateError);
  EXPECT_THROW(reg.counter("9starts_with_digit"), InvalidStateError);
  EXPECT_THROW(reg.counter(""), InvalidStateError);
  reg.counter("scidock_test_total");
  EXPECT_THROW(reg.gauge("scidock_test_total"), InvalidStateError);
  EXPECT_THROW(reg.histogram("scidock_test_total"), InvalidStateError);
}

TEST(Metrics, PrometheusExportIsSortedAndCumulative) {
  MetricsRegistry reg;
  reg.counter("scidock_b_total", "second").inc(2);
  reg.gauge("scidock_a_depth", "first").set(1.5);
  HistogramMetric& h = reg.histogram("scidock_c_seconds", {1.0});
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = reg.to_prometheus_text();

  EXPECT_NE(text.find("# HELP scidock_a_depth first"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scidock_a_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scidock_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("scidock_b_total 2"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="+Inf" holds all 2.
  EXPECT_NE(text.find("scidock_c_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("scidock_c_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("scidock_c_seconds_count 2"), std::string::npos);
  // Sorted by name: a before b before c.
  EXPECT_LT(text.find("scidock_a_depth"), text.find("scidock_b_total"));
  EXPECT_LT(text.find("scidock_b_total"), text.find("scidock_c_seconds"));
}

// ------------------------------------------------------------------ trace

TEST(Trace, ScopedSpansNestOnOneThread) {
  TraceRecorder rec;
  {
    ScopedSpan outer(&rec, "outer", "test");
    {
      ScopedSpan inner(&rec, "inner", "test", {{"k", "v"}});
      inner.set_arg("status", "done");
    }
    SCIDOCK_TRACE_SPAN(&rec, "macro", "test");
  }
  const SpanTree tree = build_span_tree(rec.events());
  ASSERT_TRUE(tree.errors.empty()) << tree.errors.front();
  ASSERT_EQ(tree.roots_by_tid.size(), 1u);
  const std::vector<SpanNode>& roots = tree.roots_by_tid.front().second;
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "outer");
  ASSERT_EQ(roots[0].children.size(), 2u);
  EXPECT_EQ(roots[0].children[0].name, "inner");
  EXPECT_EQ(roots[0].children[1].name, "macro");
  // Begin args and End args land on the same node.
  const TraceArgs& args = roots[0].children[0].args;
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0].first, "k");
  EXPECT_EQ(args[1].second, "done");
  EXPECT_EQ(tree.span_count(), 3u);
}

TEST(Trace, NullRecorderIsANoOp) {
  ScopedSpan span(nullptr, "nothing", "test");
  span.set_arg("ignored", "yes");
  SCIDOCK_TRACE_SPAN(nullptr, "also-nothing", "test");
}

TEST(Trace, CompleteSpansLandOnExplicitRows) {
  TraceRecorder rec;
  rec.complete_span("act-a", "activation", 1000.0, 500.0, /*tid=*/7);
  rec.complete_span("act-b", "activation", 2000.0, 250.0, /*tid=*/9);
  rec.instant("marker", "fault", 1500.0, /*tid=*/7);
  const SpanTree tree = build_span_tree(rec.events());
  ASSERT_TRUE(tree.errors.empty());
  EXPECT_EQ(tree.span_count(), 2u);  // instants do not create spans
  const std::vector<SpanNode>* row7 = tree.roots_for(7);
  ASSERT_NE(row7, nullptr);
  ASSERT_EQ(row7->size(), 1u);
  EXPECT_EQ((*row7)[0].name, "act-a");
  EXPECT_DOUBLE_EQ((*row7)[0].start_us, 1000.0);
  EXPECT_DOUBLE_EQ((*row7)[0].end_us, 1500.0);
  ASSERT_NE(tree.roots_for(9), nullptr);
  EXPECT_EQ(tree.roots_for(42), nullptr);
}

TEST(Trace, MalformedNestingIsReported) {
  TraceRecorder rec;
  const std::uint64_t a = rec.begin_span("a", "test");
  const std::uint64_t b = rec.begin_span("b", "test");
  rec.end_span(a);  // out of order: b is still open
  (void)b;          // never closed
  rec.end_span(999);  // orphan end
  const SpanTree tree = build_span_tree(rec.events());
  EXPECT_FALSE(tree.errors.empty());
  const std::string all = [&] {
    std::string s;
    for (const std::string& e : tree.errors) s += e + "\n";
    return s;
  }();
  EXPECT_NE(all.find("not well-nested"), std::string::npos) << all;
  EXPECT_NE(all.find("never closed"), std::string::npos) << all;
}

TEST(Trace, ChromeJsonRoundTrips) {
  TraceRecorder rec;
  {
    ScopedSpan span(&rec, "with \"quotes\" and \\slash\n", "cat",
                    {{"pair", "042_1AEC"}});
  }
  rec.complete_span("sim-act", "activation", 12.5, 3.25, 11,
                    {{"status", "FINISHED"}});
  rec.instant("mark", "fault", 20.0, 11);

  const std::string json = rec.to_chrome_json();
  const std::vector<TraceEvent> parsed = parse_chrome_trace(json);
  const std::vector<TraceEvent> original = rec.events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original[i].name) << i;
    EXPECT_EQ(parsed[i].category, original[i].category) << i;
    EXPECT_EQ(parsed[i].phase, original[i].phase) << i;
    EXPECT_DOUBLE_EQ(parsed[i].ts_us, original[i].ts_us) << i;
    EXPECT_DOUBLE_EQ(parsed[i].dur_us, original[i].dur_us) << i;
    EXPECT_EQ(parsed[i].tid, original[i].tid) << i;
    EXPECT_EQ(parsed[i].args, original[i].args) << i;
  }
  // The parsed stream folds into the same tree shape.
  const SpanTree tree = build_span_tree(parsed);
  EXPECT_TRUE(tree.errors.empty());
  EXPECT_EQ(tree.span_count(), 2u);
}

TEST(Trace, ParserRejectsMalformedJson) {
  EXPECT_THROW(parse_chrome_trace("not json"), ParseError);
  EXPECT_THROW(parse_chrome_trace("{\"foo\":[]}"), ParseError);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":[{]}"), ParseError);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":[]} trailing"),
               ParseError);
  EXPECT_TRUE(parse_chrome_trace("{\"traceEvents\":[]}").empty());
}

// ------------------------------------------- shared workflow scaffolding

Relation obs_input(int n, int hazards = 0) {
  Relation rel{{"pair", "id", "hg"}};
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.set("pair", "pair-" + std::to_string(i));
    t.set("id", std::to_string(i));
    t.set("hg", i < hazards ? "1" : "0");
    rel.add(std::move(t));
  }
  return rel;
}

Pipeline obs_pipeline() {
  Pipeline p;
  p.add_stage(Stage{
      "produce", AlgebraicOp::Map,
      [](const Tuple& in, ActivationContext& ctx) {
        const std::string& id = in.require("id");
        ctx.fs->write("/obs/" + id + ".a", "a:" + id, ctx.now, "produce");
        Tuple out = in;
        out.set("a", std::to_string(3 * std::stoi(id)));
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  p.add_stage(Stage{
      "consume", AlgebraicOp::Map,
      [](const Tuple& in, ActivationContext& ctx) {
        const std::string& id = in.require("id");
        ctx.fs->write("/obs/" + id + ".b", ctx.fs->read("/obs/" + id + ".a"),
                      ctx.now, "consume");
        Tuple out = in;
        out.set("b", in.require("a") + "!");
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  return p;
}

cloud::CostModel obs_cost_model() {
  cloud::CostModel model;
  model.set_cost({"produce", 12.0, 0.4, 0.5});
  model.set_cost({"consume", 6.0, 0.4, 0.5});
  return model;
}

/// All spans of the "activation" category across every row of the tree.
std::vector<SpanNode> activation_spans(const SpanTree& tree) {
  std::vector<SpanNode> found;
  const std::function<void(const SpanNode&)> visit = [&](const SpanNode& n) {
    if (n.category == "activation") found.push_back(n);
    for (const SpanNode& c : n.children) visit(c);
  };
  for (const auto& [tid, roots] : tree.roots_by_tid) {
    for (const SpanNode& r : roots) visit(r);
  }
  return found;
}

std::string arg_value(const SpanNode& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return v;
  }
  return "";
}

// ----------------------------------------------------- golden traces

TEST(GoldenTrace, NativeRunHasOneSpanPerActivation) {
  const Pipeline p = obs_pipeline();
  const Relation input = obs_input(6);
  for (const int threads : {1, 3}) {
    TraceRecorder trace;
    MetricsRegistry metrics;
    vfs::SharedFileSystem fs;
    prov::ProvenanceStore store;
    wf::NativeExecutorOptions opts;
    opts.threads = threads;
    opts.seed = 1234;
    opts.obs = {&trace, &metrics};
    const wf::NativeReport report =
        wf::NativeExecutor(p, fs, store, opts).run(input, "golden-native");

    ASSERT_EQ(report.tuples_lost, 0) << "threads=" << threads;
    const SpanTree tree = build_span_tree(trace.events());
    ASSERT_TRUE(tree.errors.empty())
        << "threads=" << threads << ": " << tree.errors.front();

    // Exactly one root span for the run itself...
    std::size_t run_roots = 0;
    for (const auto& [tid, roots] : tree.roots_by_tid) {
      for (const SpanNode& r : roots) {
        if (r.name == "native-run") ++run_roots;
      }
    }
    EXPECT_EQ(run_roots, 1u) << "threads=" << threads;

    // ...and one "activation" span per activation attempt (2 stages x 6
    // tuples, fault-free), every one FINISHED.
    const std::vector<SpanNode> acts = activation_spans(tree);
    ASSERT_EQ(acts.size(),
              static_cast<std::size_t>(report.activations_finished));
    EXPECT_EQ(acts.size(), 12u);
    std::size_t produce = 0, consume = 0;
    for (const SpanNode& s : acts) {
      EXPECT_EQ(arg_value(s, "status"), "FINISHED");
      EXPECT_EQ(arg_value(s, "attempt"), "1");
      EXPECT_NE(arg_value(s, "pair"), "");
      EXPECT_GE(s.end_us, s.start_us);
      if (s.name == "produce") ++produce;
      if (s.name == "consume") ++consume;
    }
    EXPECT_EQ(produce, 6u);
    EXPECT_EQ(consume, 6u);
  }
}

TEST(GoldenTrace, NativeFaultsCloseTheirSpans) {
  const Pipeline p = obs_pipeline();
  const Relation input = obs_input(10);
  chaos::ChaosProfile profile = chaos::chaos_profile_heavy();
  profile.pool.exception_probability = 0.0;
  const ChaosEngine engine(profile, 77);

  TraceRecorder trace;
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  wf::NativeExecutorOptions opts;
  opts.threads = 2;
  opts.max_attempts = 6;
  opts.seed = 77;
  opts.fault_injector = engine.activity_fault_injector();
  opts.obs.trace = &trace;
  const wf::NativeReport report =
      wf::NativeExecutor(p, fs, store, opts).run(input, "golden-faults");
  ASSERT_GT(report.activations_failed + report.activations_hung, 0)
      << "profile did not fire; the test is vacuous";

  const SpanTree tree = build_span_tree(trace.events());
  ASSERT_TRUE(tree.errors.empty()) << tree.errors.front();
  const std::vector<SpanNode> acts = activation_spans(tree);
  // Faulted attempts leave via `continue` — the RAII span must still
  // close, with the failure status attached.
  EXPECT_EQ(acts.size(),
            static_cast<std::size_t>(report.activations_finished +
                                     report.activations_failed +
                                     report.activations_hung));
  long long failed = 0, aborted = 0;
  for (const SpanNode& s : acts) {
    const std::string status = arg_value(s, "status");
    if (status == "FAILED") ++failed;
    if (status == "ABORTED") ++aborted;
  }
  EXPECT_EQ(failed, report.activations_failed);
  EXPECT_EQ(aborted, report.activations_hung);
}

TEST(GoldenTrace, SimulatedRunMatchesItsRecordStream) {
  const Pipeline p = obs_pipeline();
  const Relation input = obs_input(15);
  TraceRecorder trace;
  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(8);
  opts.seed = 4242;
  opts.obs.trace = &trace;
  const wf::SimReport report =
      wf::SimulatedExecutor(p, obs_cost_model(), opts).run(input);

  const SpanTree tree = build_span_tree(trace.events());
  ASSERT_TRUE(tree.errors.empty()) << tree.errors.front();
  std::vector<SpanNode> acts = activation_spans(tree);
  ASSERT_EQ(acts.size(), report.records.size());

  // Simulated spans are stamped with simulated seconds x 1e6 on the VM's
  // trace row; sort both sides identically and compare field by field.
  std::sort(acts.begin(), acts.end(),
            [](const SpanNode& a, const SpanNode& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.tid < b.tid;
            });
  std::vector<wf::SimActivationRecord> recs = report.records;
  std::sort(recs.begin(), recs.end(),
            [](const wf::SimActivationRecord& a,
               const wf::SimActivationRecord& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.vm_id < b.vm_id;
            });
  for (std::size_t i = 0; i < acts.size(); ++i) {
    EXPECT_EQ(acts[i].name, recs[i].tag) << i;
    EXPECT_EQ(acts[i].tid, recs[i].vm_id) << i;
    EXPECT_DOUBLE_EQ(acts[i].start_us, recs[i].start * 1e6) << i;
    EXPECT_DOUBLE_EQ(acts[i].end_us, recs[i].end * 1e6) << i;
    EXPECT_EQ(arg_value(acts[i], "status"), recs[i].status) << i;
    EXPECT_EQ(arg_value(acts[i], "attempt"), std::to_string(recs[i].attempt))
        << i;
  }

  // One vm-boot span per fleet VM.
  std::size_t boots = 0;
  for (const auto& [tid, roots] : tree.roots_by_tid) {
    for (const SpanNode& r : roots) {
      if (r.name == "vm-boot") ++boots;
    }
  }
  EXPECT_EQ(boots, opts.fleet.size());
}

// --------------------------------------- metrics <-> provenance sweep

constexpr int kReconcileSeeds = 24;

TEST(Reconciliation, SimCountersMatchProvenanceAcrossSeeds) {
  const Pipeline p = obs_pipeline();
  const cloud::CostModel model = obs_cost_model();
  const Relation input = obs_input(20);
  long long faults_seen = 0;
  for (int seed = 0; seed < kReconcileSeeds; ++seed) {
    const ChaosEngine engine(seed % 2 == 0 ? chaos::chaos_profile_light()
                                           : chaos::chaos_profile_heavy(),
                             static_cast<std::uint64_t>(seed));
    wf::SimExecutorOptions opts;
    opts.fleet = wf::m3_fleet_for_cores(8);
    opts.failure = engine.failure_options(6, /*hang_timeout_s=*/300.0);
    opts.seed = static_cast<std::uint64_t>(seed);
    MetricsRegistry metrics;  // fresh per run: counters are cumulative
    opts.obs.metrics = &metrics;
    prov::ProvenanceStore store;
    const wf::SimReport report =
        wf::SimulatedExecutor(p, model, opts).run(input, &store, "obs-sim");

    const RunSummary summary = chaos::summarize(report, opts, input.size());
    InvariantChecker checker;
    checker.check_conservation(summary);
    checker.check_metrics(summary, metrics, store, "obs-sim");
    checker.check_lockdep();
    checker.check_racer();
    ASSERT_TRUE(checker.ok()) << "seed=" << seed << "\n"
                              << checker.to_string();
    faults_seen += report.activations_failed + report.activations_hung;
  }
  EXPECT_GT(faults_seen, 20);
}

TEST(Reconciliation, NativeCountersMatchProvenanceAcrossSeeds) {
  const Pipeline p = obs_pipeline();
  const Relation input = obs_input(10);
  long long faults_seen = 0;
  for (int seed = 0; seed < kReconcileSeeds; ++seed) {
    chaos::ChaosProfile profile = seed % 2 == 0
                                      ? chaos::chaos_profile_light()
                                      : chaos::chaos_profile_heavy();
    profile.vfs.path_substring = "/obs/";
    profile.pool.exception_probability = 0.0;
    const ChaosEngine engine(profile, static_cast<std::uint64_t>(seed));

    vfs::SharedFileSystem fs;
    fs.set_fault_hook(engine.vfs_hook());
    prov::ProvenanceStore store;
    MetricsRegistry metrics;
    wf::NativeExecutorOptions opts;
    opts.threads = 1 + seed % 4;
    opts.max_attempts = 6;
    opts.seed = static_cast<std::uint64_t>(seed);
    opts.fault_injector = engine.activity_fault_injector();
    opts.obs.metrics = &metrics;
    const wf::NativeReport report =
        wf::NativeExecutor(p, fs, store, opts).run(input, "obs-native");

    const RunSummary summary = chaos::summarize(report, opts, input.size());
    InvariantChecker checker;
    checker.check_conservation(summary);
    checker.check_metrics(summary, metrics, store, "obs-native");
    checker.check_lockdep();
    checker.check_racer();
    ASSERT_TRUE(checker.ok()) << "seed=" << seed << " threads=" << opts.threads
                              << "\n"
                              << checker.to_string();
    faults_seen += report.activations_failed + report.activations_hung;
  }
  EXPECT_GT(faults_seen, 10);
}

TEST(Reconciliation, TamperedStoreIsFlagged) {
  const Pipeline p = obs_pipeline();
  const Relation input = obs_input(8);
  MetricsRegistry metrics;
  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(4);
  opts.seed = 5;
  opts.obs.metrics = &metrics;
  prov::ProvenanceStore store;
  const wf::SimReport report = wf::SimulatedExecutor(p, obs_cost_model(), opts)
                                   .run(input, &store, "tamper");
  const RunSummary summary = chaos::summarize(report, opts, input.size());
  InvariantChecker before;
  ASSERT_TRUE(before.check_metrics(summary, metrics, store, "tamper"))
      << before.to_string();

  // Drop one FINISHED row; the started and finished counters must both
  // stop matching.
  bool dropped = false;
  store.with_database([&](sql::Database& db) {
    sql::Table& t = db.table("hactivation");
    const auto c_status = static_cast<std::size_t>(t.column_index("status"));
    t.erase_if([&](const sql::Row& row) {
      if (dropped || row[c_status].as_string() != prov::kStatusFinished) {
        return false;
      }
      dropped = true;
      return true;
    });
  });
  ASSERT_TRUE(dropped);
  InvariantChecker after;
  EXPECT_FALSE(after.check_metrics(summary, metrics, store, "tamper"));
  EXPECT_FALSE(after.violations().empty());
}

TEST(Reconciliation, MissingWorkflowIsFlagged) {
  MetricsRegistry metrics;
  prov::ProvenanceStore store;
  RunSummary summary;
  summary.executor = "native";
  InvariantChecker checker;
  EXPECT_FALSE(checker.check_metrics(summary, metrics, store, "no-such-tag"));
}

// ------------------------------------------------------ concurrency

TEST(Concurrency, RegistryAndRecorderSurviveHammering) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  MetricsRegistry reg;
  TraceRecorder rec;
  Counter& shared = reg.counter("scidock_test_shared_total");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &rec, &shared, t] {
      // Every thread resolves some handles itself to race registration.
      Counter& own = reg.counter("scidock_test_thread_" + std::to_string(t) +
                                 "_total");
      HistogramMetric& h = reg.histogram("scidock_test_lat_seconds");
      Gauge& g = reg.gauge("scidock_test_level");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        own.inc();
        h.observe(0.001 * i);
        g.set(static_cast<double>(i));
        ScopedSpan span(&rec, "work", "test");
        if (i % 16 == 0) rec.instant("tick", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(shared.value(), static_cast<long long>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter_value("scidock_test_thread_" + std::to_string(t) +
                                "_total"),
              kIters);
  }
  EXPECT_EQ(
      reg.histogram("scidock_test_lat_seconds").count(),
      static_cast<long long>(kThreads) * kIters);

  // Every span id unique; tree well-nested per thread.
  const std::vector<TraceEvent> events = rec.events();
  std::set<std::uint64_t> ids;
  std::size_t begins = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == TraceEvent::Phase::Begin) {
      ++begins;
      EXPECT_TRUE(ids.insert(e.span_id).second) << "duplicate " << e.span_id;
    }
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(kThreads) * kIters);
  const SpanTree tree = build_span_tree(events);
  EXPECT_TRUE(tree.errors.empty());
  EXPECT_EQ(tree.span_count(), begins);
}

// ----------------------------------------------- pool & prov metrics

TEST(PoolMetrics, InstrumentedPoolCountsTasks) {
  MetricsRegistry reg;
  ThreadPool pool(3);
  instrument_thread_pool(pool, reg);
  constexpr std::size_t kTasks = 64;
  std::atomic<int> ran{0};
  pool.parallel_for(kTasks, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), static_cast<int>(kTasks));
  EXPECT_EQ(reg.counter_value("scidock_pool_tasks_total"),
            static_cast<long long>(kTasks));
  EXPECT_EQ(reg.histogram("scidock_pool_queue_wait_seconds").count(),
            static_cast<long long>(kTasks));
  EXPECT_EQ(reg.histogram("scidock_pool_task_seconds").count(),
            static_cast<long long>(kTasks));
  EXPECT_GE(reg.gauge_value("scidock_pool_queue_depth"), 1.0);
}

TEST(PoolMetrics, FinishedFiresEvenWhenTasksThrow) {
  MetricsRegistry reg;
  ThreadPool pool(2);
  instrument_thread_pool(pool, reg);
  auto f = pool.submit([]() -> int { throw InvalidStateError("boom"); });
  EXPECT_THROW(f.get(), InvalidStateError);
  // The exception still counts as a finished task with a latency sample.
  EXPECT_EQ(reg.counter_value("scidock_pool_tasks_total"), 1);
  EXPECT_EQ(reg.histogram("scidock_pool_task_seconds").count(), 1);
}

TEST(ProvMetrics, StoreCountsRowsAndQueries) {
  MetricsRegistry reg;
  prov::ProvenanceStore store;
  store.set_metrics(&reg);
  const long long wkfid = store.begin_workflow("m", "d", "/tmp/", 0.0);
  const long long actid = store.register_activity(wkfid, "a", "./cmd", "MAP");
  for (int i = 0; i < 3; ++i) {
    const long long taskid = store.begin_activation(actid, wkfid, 1.0, 0, "w");
    store.end_activation(taskid, 2.0, prov::kStatusFinished, 0, 1);
  }
  store.record_file(wkfid, actid, 1, "f.txt", 10, "/d/");
  store.record_value(1, "feb", -1.0, "");
  store.query("SELECT count(*) FROM hactivation");
  store.end_workflow(wkfid, 3.0);

  EXPECT_EQ(reg.counter_value("scidock_prov_workflow_rows_total"), 1);
  EXPECT_EQ(reg.counter_value("scidock_prov_activity_rows_total"), 1);
  EXPECT_EQ(reg.counter_value("scidock_prov_activation_rows_total"), 3);
  EXPECT_EQ(reg.counter_value("scidock_prov_file_rows_total"), 1);
  EXPECT_EQ(reg.counter_value("scidock_prov_value_rows_total"), 1);
  EXPECT_EQ(reg.counter_value("scidock_prov_queries_total"), 1);

  // Detaching stops the counting but keeps the recorded values.
  store.set_metrics(nullptr);
  store.query("SELECT count(*) FROM hworkflow");
  EXPECT_EQ(reg.counter_value("scidock_prov_queries_total"), 1);
}

}  // namespace
}  // namespace scidock::obs
