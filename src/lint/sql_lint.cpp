#include "lint/sql_lint.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/obs.hpp"
#include "sql/ast.hpp"
#include "sql/lexer.hpp"
#include "sql/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::lint {

std::string_view to_string(ColType type) {
  switch (type) {
    case ColType::Int: return "int";
    case ColType::Real: return "real";
    case ColType::Text: return "text";
  }
  return "?";
}

const CatalogColumn* CatalogTable::find(std::string_view column) const {
  for (const CatalogColumn& c : columns) {
    if (iequals(c.name, column)) return &c;
  }
  return nullptr;
}

CatalogTable& Catalog::add_table(std::string name,
                                 std::vector<CatalogColumn> columns) {
  tables_.push_back(CatalogTable{std::move(name), std::move(columns)});
  return tables_.back();
}

const CatalogTable* Catalog::find(std::string_view table) const {
  for (const CatalogTable& t : tables_) {
    if (iequals(t.name, table)) return &t;
  }
  return nullptr;
}

const Catalog& prov_wf_catalog() {
  static const Catalog catalog = [] {
    Catalog c;
    c.add_table("hmachine", {{"vmid", ColType::Int},
                             {"type", ColType::Text},
                             {"cores", ColType::Int},
                             {"speed_factor", ColType::Real}});
    c.add_table("hworkflow", {{"wkfid", ColType::Int},
                              {"tag", ColType::Text},
                              {"description", ColType::Text},
                              {"expdir", ColType::Text},
                              {"starttime", ColType::Real},
                              {"endtime", ColType::Real}});
    c.add_table("hactivity", {{"actid", ColType::Int},
                              {"wkfid", ColType::Int},
                              {"tag", ColType::Text},
                              {"activation", ColType::Text},
                              {"op", ColType::Text}});
    c.add_table("hactivation", {{"taskid", ColType::Int},
                                {"actid", ColType::Int},
                                {"wkfid", ColType::Int},
                                {"starttime", ColType::Real},
                                {"endtime", ColType::Real},
                                {"status", ColType::Text},
                                {"vmid", ColType::Int},
                                {"exitcode", ColType::Int},
                                {"attempts", ColType::Int},
                                {"workload", ColType::Text}});
    c.add_table("hfile", {{"fileid", ColType::Int},
                          {"wkfid", ColType::Int},
                          {"actid", ColType::Int},
                          {"taskid", ColType::Int},
                          {"fname", ColType::Text},
                          {"fsize", ColType::Int},
                          {"fdir", ColType::Text}});
    c.add_table("hvalue", {{"valueid", ColType::Int},
                           {"taskid", ColType::Int},
                           {"key", ColType::Text},
                           {"value_num", ColType::Real},
                           {"value_text", ColType::Text}});
    return c;
  }();
  return catalog;
}

Catalog relation_catalog(std::vector<CatalogColumn> rel_columns) {
  Catalog c;
  c.add_table("rel", std::move(rel_columns));
  return c;
}

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::UnaryOp;

/// Inferred expression type; Any = unknown/unresolvable (stops cascades).
enum class Ty { Int, Real, Text, Any };

bool numeric_ok(Ty t) { return t != Ty::Text; }

std::string_view ty_name(Ty t) {
  switch (t) {
    case Ty::Int: return "int";
    case Ty::Real: return "real";
    case Ty::Text: return "text";
    case Ty::Any: return "?";
  }
  return "?";
}

Ty from_col_type(ColType t) {
  switch (t) {
    case ColType::Int: return Ty::Int;
    case ColType::Real: return Ty::Real;
    case ColType::Text: return Ty::Text;
  }
  return Ty::Any;
}

bool is_aggregate_name(const std::string& fn) {
  return fn == "min" || fn == "max" || fn == "sum" || fn == "avg" ||
         fn == "count";
}

class QueryLinter {
 public:
  QueryLinter(std::string_view sql, const Catalog& catalog, std::string file,
              Report& report)
      : sql_(sql), catalog_(catalog), file_(std::move(file)),
        report_(report) {}

  void run() {
    sql::Statement stmt;
    try {
      stmt = sql::parse_statement(sql_);
    } catch (const Error& e) {
      report_.add_error("SQL001", file_, 0, e.what());
      return;
    }
    try {
      tokens_ = sql::tokenize(sql_);
    } catch (const Error&) {
      tokens_.clear();  // unreachable after a successful parse
    }
    switch (stmt.kind) {
      case sql::Statement::Kind::Select:
        check_select(stmt.select);
        break;
      case sql::Statement::Kind::Insert:
        check_insert(stmt.insert);
        break;
      case sql::Statement::Kind::Delete:
        bind_single(stmt.del.table);
        if (stmt.del.where) infer(*stmt.del.where, /*agg_allowed=*/false);
        break;
      case sql::Statement::Kind::Update:
        check_update(stmt.update);
        break;
      case sql::Statement::Kind::CreateTable:
        break;  // creates a new table; nothing to resolve
    }
  }

 private:
  struct Binding {
    std::string alias;
    const CatalogTable* table = nullptr;
  };

  // ---- diagnostics ----

  /// Best-effort source line: the first token spelled like `ident`.
  int line_of(std::string_view ident) const {
    for (const sql::Token& t : tokens_) {
      if (t.kind == sql::TokenKind::Identifier && iequals(t.text, ident)) {
        return t.line;
      }
    }
    return 0;
  }

  void error(std::string rule, std::string_view ident, std::string message) {
    report_.add_error(std::move(rule), file_, line_of(ident),
                      std::move(message));
  }

  // ---- binding ----

  void bind_from(const std::vector<sql::TableRef>& from) {
    for (const sql::TableRef& ref : from) {
      const CatalogTable* table = catalog_.find(ref.table);
      if (table == nullptr) {
        error("SQL002", ref.table, "unknown table '" + ref.table + "'");
        permissive_ = true;  // columns cannot resolve; avoid cascades
        continue;
      }
      bindings_.push_back(
          Binding{ref.alias.empty() ? ref.table : ref.alias, table});
    }
  }

  void bind_single(const std::string& table_name) {
    const CatalogTable* table = catalog_.find(table_name);
    if (table == nullptr) {
      error("SQL002", table_name, "unknown table '" + table_name + "'");
      permissive_ = true;
      return;
    }
    bindings_.push_back(Binding{table_name, table});
  }

  /// Resolve a column reference; reports SQL003 and returns nullptr when
  /// it does not resolve uniquely.
  const CatalogColumn* resolve(const Expr& e) {
    if (permissive_) return nullptr;
    const std::string display =
        (e.qualifier.empty() ? "" : e.qualifier + ".") + e.column;
    const CatalogColumn* found = nullptr;
    bool ambiguous = false;
    for (const Binding& b : bindings_) {
      if (!e.qualifier.empty() && !iequals(b.alias, e.qualifier)) continue;
      const CatalogColumn* c = b.table->find(e.column);
      if (c != nullptr) {
        if (found != nullptr) ambiguous = true;
        found = c;
      }
    }
    if (ambiguous) {
      error("SQL003", e.column,
            "ambiguous column reference '" + display + "'");
      return nullptr;
    }
    if (found == nullptr) {
      error("SQL003", e.column, "unknown column '" + display + "'");
      return nullptr;
    }
    return found;
  }

  /// Canonical form for GROUP BY matching: resolved column refs compare by
  /// catalog identity (so `tag` matches `a.tag`), everything else by its
  /// lower-cased rendering.
  std::string canonical(const Expr& e) {
    if (e.kind == Expr::Kind::Column && !permissive_) {
      for (std::size_t t = 0; t < bindings_.size(); ++t) {
        if (!e.qualifier.empty() &&
            !iequals(bindings_[t].alias, e.qualifier)) {
          continue;
        }
        const CatalogColumn* c = bindings_[t].table->find(e.column);
        if (c != nullptr) {
          return "#" + std::to_string(t) + "." + to_lower(c->name);
        }
      }
    }
    return to_lower(e.to_string());
  }

  // ---- type inference / expression checks ----

  Ty infer_column(const Expr& e) {
    const CatalogColumn* c = resolve(e);
    return c == nullptr ? Ty::Any : from_col_type(c->type);
  }

  void require_numeric(Ty t, const Expr& e, const std::string& what) {
    if (!numeric_ok(t)) {
      error("SQL007", first_identifier(e),
            what + " requires a number, got text (" + e.to_string() + ")");
    }
  }

  /// An identifier inside `e` to anchor the diagnostic line on.
  std::string first_identifier(const Expr& e) const {
    if (e.kind == Expr::Kind::Column) return e.column;
    if (e.kind == Expr::Kind::Call && !e.call_name.empty()) {
      return e.call_name;
    }
    if (e.lhs) {
      const std::string l = first_identifier(*e.lhs);
      if (!l.empty()) return l;
    }
    if (e.rhs) {
      const std::string r = first_identifier(*e.rhs);
      if (!r.empty()) return r;
    }
    for (const sql::ExprPtr& a : e.args) {
      const std::string s = first_identifier(*a);
      if (!s.empty()) return s;
    }
    return "";
  }

  Ty infer_call(const Expr& e, bool agg_allowed) {
    const std::string& fn = e.call_name;
    if (is_aggregate_name(fn)) return infer_aggregate(e, agg_allowed);

    auto expect_args = [&](std::size_t lo, std::size_t hi) {
      if (e.args.size() < lo || e.args.size() > hi) {
        error("SQL004", fn,
              fn + "() takes " + std::to_string(lo) +
                  (lo == hi ? "" : ".." + std::to_string(hi)) +
                  " argument(s), got " + std::to_string(e.args.size()));
        return false;
      }
      return true;
    };
    auto arg_ty = [&](std::size_t i) {
      return infer(*e.args[i], /*agg_allowed=*/false);
    };

    if (fn == "extract") {
      if (!expect_args(2, 2)) return Ty::Real;
      const Expr& field = *e.args[0];
      if (field.kind == Expr::Kind::Literal && field.literal.is_string()) {
        const std::string f = to_lower(field.literal.as_string());
        if (f != "epoch" && f != "minute" && f != "hour" && f != "day") {
          error("SQL004", fn,
                "unsupported EXTRACT field '" + f +
                    "' (expected epoch, minute, hour or day)");
        }
      }
      require_numeric(arg_ty(1), *e.args[1], "extract()");
      return Ty::Real;
    }
    if (fn == "abs") {
      if (!expect_args(1, 1)) return Ty::Real;
      const Ty t = arg_ty(0);
      require_numeric(t, *e.args[0], "abs()");
      return t == Ty::Int ? Ty::Int : Ty::Real;
    }
    if (fn == "round") {
      if (!expect_args(1, 2)) return Ty::Real;
      require_numeric(arg_ty(0), *e.args[0], "round()");
      if (e.args.size() == 2) {
        require_numeric(arg_ty(1), *e.args[1], "round() scale");
      }
      return Ty::Real;
    }
    if (fn == "floor" || fn == "ceil" || fn == "ceiling") {
      if (!expect_args(1, 1)) return Ty::Real;
      require_numeric(arg_ty(0), *e.args[0], fn + "()");
      return Ty::Real;
    }
    if (fn == "length") {
      if (expect_args(1, 1)) arg_ty(0);
      return Ty::Int;
    }
    if (fn == "upper" || fn == "lower") {
      if (expect_args(1, 1)) arg_ty(0);
      return Ty::Text;
    }
    if (fn == "coalesce") {
      if (!expect_args(1, static_cast<std::size_t>(-1))) return Ty::Any;
      Ty common = arg_ty(0);
      for (std::size_t i = 1; i < e.args.size(); ++i) {
        if (arg_ty(i) != common) common = Ty::Any;
      }
      return common;
    }
    if (fn == "substr" || fn == "substring") {
      if (!expect_args(2, 3)) return Ty::Text;
      arg_ty(0);
      require_numeric(arg_ty(1), *e.args[1], fn + "() start");
      if (e.args.size() == 3) {
        require_numeric(arg_ty(2), *e.args[2], fn + "() length");
      }
      return Ty::Text;
    }
    error("SQL004", fn, "unknown SQL function '" + fn + "'");
    for (const sql::ExprPtr& a : e.args) infer(*a, /*agg_allowed=*/false);
    return Ty::Any;
  }

  Ty infer_aggregate(const Expr& e, bool agg_allowed) {
    const std::string& fn = e.call_name;
    if (!agg_allowed) {
      error("SQL005", fn,
            "aggregate " + fn + "() not allowed here (only in the select "
                "list, HAVING or ORDER BY of a grouped query, and never "
                "nested)");
    }
    if (e.star_arg) {
      if (fn != "count") {
        error("SQL005", fn, fn + "(*) is invalid; only count(*) takes *");
      }
      return fn == "count" ? Ty::Int : Ty::Any;
    }
    if (e.args.size() != 1) {
      error("SQL005", fn,
            "aggregate " + fn + "() takes exactly one argument, got " +
                std::to_string(e.args.size()));
      return Ty::Any;
    }
    const Ty arg = infer(*e.args[0], /*agg_allowed=*/false);  // no nesting
    if (fn == "count") return Ty::Int;
    if (fn == "sum" || fn == "avg") {
      require_numeric(arg, *e.args[0], fn + "()");
      return Ty::Real;
    }
    return arg;  // min/max preserve their argument's type
  }

  void check_comparable(Ty l, Ty r, const Expr& e) {
    const bool text_vs_number =
        (l == Ty::Text && (r == Ty::Int || r == Ty::Real)) ||
        (r == Ty::Text && (l == Ty::Int || l == Ty::Real));
    if (text_vs_number) {
      error("SQL007", first_identifier(e),
            "comparing " + std::string(ty_name(l)) + " with " +
                std::string(ty_name(r)) + " (" + e.to_string() + ")");
    }
  }

  Ty infer_binary(const Expr& e, bool agg_allowed) {
    const Ty l = infer(*e.lhs, agg_allowed);
    const Ty r = infer(*e.rhs, agg_allowed);
    switch (e.binary_op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod: {
        require_numeric(l, *e.lhs, "arithmetic");
        require_numeric(r, *e.rhs, "arithmetic");
        if (l == Ty::Any || r == Ty::Any) return Ty::Any;
        if (l == Ty::Int && r == Ty::Int && e.binary_op != BinaryOp::Div) {
          return Ty::Int;
        }
        return Ty::Real;
      }
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        check_comparable(l, r, e);
        return Ty::Int;
      case BinaryOp::Like:
        if (r == Ty::Int || r == Ty::Real) {
          error("SQL007", first_identifier(e),
                "LIKE pattern must be text (" + e.to_string() + ")");
        }
        return Ty::Int;
      case BinaryOp::And:
      case BinaryOp::Or:
        return Ty::Int;
      case BinaryOp::Concat:
        return Ty::Text;
    }
    return Ty::Any;
  }

  Ty infer(const Expr& e, bool agg_allowed) {
    switch (e.kind) {
      case Expr::Kind::Literal:
        if (e.literal.is_null()) return Ty::Any;
        if (e.literal.is_int()) return Ty::Int;
        if (e.literal.is_double()) return Ty::Real;
        return Ty::Text;
      case Expr::Kind::Column:
        return infer_column(e);
      case Expr::Kind::Binary:
        return infer_binary(e, agg_allowed);
      case Expr::Kind::Unary: {
        const Ty t = infer(*e.lhs, agg_allowed);
        if (e.unary_op == UnaryOp::Neg) {
          require_numeric(t, *e.lhs, "unary minus");
          return t == Ty::Int ? Ty::Int : Ty::Real;
        }
        return Ty::Int;  // NOT / IS NULL / IS NOT NULL
      }
      case Expr::Kind::Call:
        return infer_call(e, agg_allowed);
      case Expr::Kind::In: {
        const Ty probe = infer(*e.lhs, agg_allowed);
        for (const sql::ExprPtr& a : e.args) {
          check_comparable(probe, infer(*a, agg_allowed), e);
        }
        return Ty::Int;
      }
      case Expr::Kind::Between: {
        const Ty v = infer(*e.lhs, agg_allowed);
        for (const sql::ExprPtr& a : e.args) {
          check_comparable(v, infer(*a, agg_allowed), e);
        }
        return Ty::Int;
      }
      case Expr::Kind::Star:
        return Ty::Any;
    }
    return Ty::Any;
  }

  // ---- grouped-query column discipline (SQL006) ----

  /// Every column reference outside an aggregate must be (part of) a
  /// GROUP BY expression; the engine silently evaluates violators on the
  /// group's first row, which is exactly the bug class this rule catches.
  void check_grouped(const Expr& e, const std::set<std::string>& group_keys,
                     const std::string& where) {
    if (group_keys.count(canonical(e)) > 0) return;
    if (e.kind == Expr::Kind::Call && is_aggregate_name(e.call_name)) {
      return;  // aggregates range over the whole group
    }
    if (e.kind == Expr::Kind::Column) {
      const std::string display =
          (e.qualifier.empty() ? "" : e.qualifier + ".") + e.column;
      error("SQL006", e.column,
            "column '" + display + "' in " + where +
                " is neither grouped nor inside an aggregate");
      return;
    }
    if (e.lhs) check_grouped(*e.lhs, group_keys, where);
    if (e.rhs) check_grouped(*e.rhs, group_keys, where);
    for (const sql::ExprPtr& a : e.args) {
      check_grouped(*a, group_keys, where);
    }
  }

  // ---- statements ----

  void check_select(const sql::SelectStmt& stmt) {
    bind_from(stmt.from);

    if (stmt.where) infer(*stmt.where, /*agg_allowed=*/false);
    for (const sql::ExprPtr& g : stmt.group_by) {
      infer(*g, /*agg_allowed=*/false);
    }

    bool has_aggregate = false;
    for (const sql::SelectItem& item : stmt.items) {
      infer(*item.expr, /*agg_allowed=*/true);
      if (sql::contains_aggregate(*item.expr)) has_aggregate = true;
    }
    // The engine derives groupedness from the select list only.
    const bool grouped = has_aggregate || !stmt.group_by.empty();

    if (stmt.having) infer(*stmt.having, /*agg_allowed=*/grouped);

    // ORDER BY may name a select-list alias (PostgreSQL semantics); the
    // engine substitutes the aliased expression, so resolve before
    // checking. Aggregates in ORDER BY only work for grouped queries.
    std::vector<const Expr*> order_exprs;
    for (const sql::OrderItem& o : stmt.order_by) {
      const Expr* resolved = o.expr.get();
      if (resolved->kind == Expr::Kind::Column &&
          resolved->qualifier.empty()) {
        for (const sql::SelectItem& item : stmt.items) {
          if (!item.alias.empty() && iequals(item.alias, resolved->column)) {
            resolved = item.expr.get();
            break;
          }
        }
      }
      if (resolved == o.expr.get()) {  // not an alias: resolve normally
        infer(*resolved, /*agg_allowed=*/grouped);
      }
      order_exprs.push_back(resolved);
    }

    if (grouped && !permissive_) {
      std::set<std::string> group_keys;
      for (const sql::ExprPtr& g : stmt.group_by) {
        group_keys.insert(canonical(*g));
      }
      for (const sql::SelectItem& item : stmt.items) {
        check_grouped(*item.expr, group_keys, "the select list");
      }
      if (stmt.having) check_grouped(*stmt.having, group_keys, "HAVING");
      for (const Expr* o : order_exprs) {
        check_grouped(*o, group_keys, "ORDER BY");
      }
    }
  }

  void check_insert(const sql::InsertStmt& stmt) {
    const CatalogTable* table = catalog_.find(stmt.table);
    if (table == nullptr) {
      error("SQL002", stmt.table, "unknown table '" + stmt.table + "'");
      return;
    }
    for (const std::string& col : stmt.columns) {
      if (table->find(col) == nullptr) {
        error("SQL003", col,
              "unknown column '" + col + "' in table '" + stmt.table + "'");
      }
    }
    permissive_ = true;  // VALUES rows cannot reference columns
    for (const auto& row : stmt.rows) {
      for (const sql::ExprPtr& v : row) infer(*v, /*agg_allowed=*/false);
    }
  }

  void check_update(const sql::UpdateStmt& stmt) {
    bind_single(stmt.table);
    const CatalogTable* table = catalog_.find(stmt.table);
    for (const auto& [col, value] : stmt.assignments) {
      if (table != nullptr && table->find(col) == nullptr) {
        error("SQL003", col,
              "unknown column '" + col + "' in table '" + stmt.table + "'");
      }
      infer(*value, /*agg_allowed=*/false);
    }
    if (stmt.where) infer(*stmt.where, /*agg_allowed=*/false);
  }

  std::string_view sql_;
  const Catalog& catalog_;
  std::string file_;
  Report& report_;
  std::vector<sql::Token> tokens_;
  std::vector<Binding> bindings_;
  /// Set when a FROM table is unknown: column references are unresolvable
  /// by construction, so SQL003/SQL006 are suppressed to avoid cascades.
  bool permissive_ = false;
};

/// SQL008: `-- reconciles: <metric>[, <metric>...]` annotations mark a
/// shipped query as the provenance side of a metrics reconciliation
/// (DESIGN.md §9); each name must be a series some scidock_* registration
/// site actually creates (obs::known_metric_names()), otherwise the
/// reconciliation silently compares against a counter that is always 0.
/// The SQL lexer strips `--` comments, so annotations never affect
/// execution. Works on the raw text: by the time the parser runs the
/// comments are gone.
void check_reconcile_annotations(std::string_view sql, const std::string& file,
                                 Report& report) {
  const std::vector<std::string_view>& known = obs::known_metric_names();
  int line_no = 0;
  for (const std::string& raw : split(std::string(sql), '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    constexpr std::string_view kPrefix = "-- reconciles:";
    if (line.substr(0, kPrefix.size()) != kPrefix) continue;
    for (const std::string& name : split(
             std::string(line.substr(kPrefix.size())), ',')) {
      const std::string_view metric = trim(name);
      if (metric.empty()) continue;
      if (std::find(known.begin(), known.end(), metric) == known.end()) {
        report.add_error(
            "SQL008", file, line_no,
            "'-- reconciles:' names metric '" + std::string(metric) +
                "' but no scidock_* series of that name is registered");
      }
    }
  }
}

}  // namespace

Report lint_query(std::string_view sql, const Catalog& catalog,
                  std::string file) {
  Report report;
  check_reconcile_annotations(sql, file, report);
  QueryLinter(sql, catalog, std::move(file), report).run();
  return report;
}

}  // namespace scidock::lint
