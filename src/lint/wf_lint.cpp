#include "lint/wf_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "wf/spec.hpp"
#include "wf/template.hpp"
#include "xml/xml.hpp"

namespace scidock::lint {

namespace {

/// Everything the checker needs about one activity, lifted off the DOM
/// with per-element source lines preserved.
struct LintRelation {
  std::string name;
  std::string filename;
  std::vector<std::string> fields;
  bool is_input = true;
  int line = 0;
};

struct LintActivity {
  std::string tag;
  std::string op;  ///< raw `type` attribute ("" = defaulted to MAP)
  std::string activation;
  std::vector<LintRelation> relations;
  int line = 0;

  bool op_known() const {
    for (const char* known :
         {"MAP", "SPLIT_MAP", "FILTER", "REDUCE", "SR_QUERY"}) {
      if (op.empty() || iequals(op, known)) return true;
    }
    return false;
  }
  bool is_split_map() const { return iequals(op, "SPLIT_MAP"); }
};

std::vector<std::string> parse_fields(const std::string& attr) {
  std::vector<std::string> out;
  for (const std::string& f : split(attr, ',')) {
    const std::string_view t = trim(f);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

class WorkflowLinter {
 public:
  WorkflowLinter(std::string file, Report& report)
      : file_(std::move(file)), report_(report) {}

  void run(const xml::Element& root) {
    if (root.name() != "SciCumulus") {
      error("WF001", root.source_line(),
            "root element must be <SciCumulus>, got <" + root.name() + ">");
      return;
    }
    check_database(root);
    const xml::Element* wf_el = root.child("SciCumulusWorkflow");
    if (wf_el == nullptr) {
      error("WF001", root.source_line(), "missing <SciCumulusWorkflow>");
      return;
    }
    if (!wf_el->attribute("tag")) {
      error("WF001", wf_el->source_line(),
            "<SciCumulusWorkflow> has no tag attribute");
    }
    collect_activities(*wf_el);
    if (activities_.empty()) {
      error("WF001", wf_el->source_line(), "workflow has no activities");
      return;
    }
    check_arity();
    check_producers();
    check_schemas();
    check_templates();
    check_cycles();
  }

 private:
  void error(std::string rule, int line, std::string message) {
    report_.add_error(std::move(rule), file_, line, std::move(message));
  }

  void check_database(const xml::Element& root) {
    const xml::Element* db = root.child("database");
    if (db == nullptr) return;
    const auto port = db->attribute("port");
    if (!port) return;
    long long value = 0;
    try {
      value = parse_int(*port, "database port");
    } catch (const Error&) {
      error("WF001", db->source_line(),
            "database port '" + *port + "' is not an integer");
      return;
    }
    if (value < 1 || value > 65535) {
      error("WF001", db->source_line(),
            "database port " + std::to_string(value) +
                " outside 1..65535");
    }
  }

  void collect_activities(const xml::Element& wf_el) {
    std::set<std::string> seen_tags;
    for (const xml::Element* act_el :
         wf_el.children_named("SciCumulusActivity")) {
      LintActivity act;
      act.line = act_el->source_line();
      if (auto tag = act_el->attribute("tag")) {
        act.tag = *tag;
      } else {
        error("WF001", act.line, "<SciCumulusActivity> has no tag attribute");
        act.tag = "<unnamed>";
      }
      if (auto type = act_el->attribute("type")) act.op = *type;
      if (auto cmd = act_el->attribute("activation")) act.activation = *cmd;

      if (!act.op_known()) {
        error("WF002", act.line,
              "activity '" + act.tag + "': unknown operator '" + act.op +
                  "' (expected MAP, SPLIT_MAP, FILTER, REDUCE or SR_QUERY)");
      }
      if (act.tag != "<unnamed>" && !seen_tags.insert(act.tag).second) {
        error("WF004", act.line, "duplicate activity tag '" + act.tag + "'");
      }

      std::set<std::string> seen_relations;
      for (const xml::Element* rel_el : act_el->children_named("Relation")) {
        LintRelation rel;
        rel.line = rel_el->source_line();
        if (auto name = rel_el->attribute("name")) {
          rel.name = *name;
        } else {
          error("WF001", rel.line,
                "activity '" + act.tag + "': <Relation> has no name");
          continue;
        }
        if (auto fname = rel_el->attribute("filename")) rel.filename = *fname;
        if (auto fields = rel_el->attribute("fields")) {
          rel.fields = parse_fields(*fields);
        }
        const auto reltype = rel_el->attribute("reltype");
        if (!reltype) {
          error("WF001", rel.line,
                "activity '" + act.tag + "': relation '" + rel.name +
                    "' has no reltype");
          continue;
        }
        if (iequals(*reltype, "Input")) {
          rel.is_input = true;
        } else if (iequals(*reltype, "Output")) {
          rel.is_input = false;
        } else {
          error("WF001", rel.line,
                "activity '" + act.tag + "': unknown reltype '" + *reltype +
                    "' (expected Input or Output)");
          continue;
        }
        if (!seen_relations.insert(rel.name).second) {
          error("WF004", rel.line,
                "activity '" + act.tag + "': relation '" + rel.name +
                    "' declared twice");
        }
        act.relations.push_back(std::move(rel));
      }
      activities_.push_back(std::move(act));
    }
  }

  /// WF003: every operator consumes exactly one relation; SPLIT_MAP may
  /// fan out to several, all others produce exactly one.
  void check_arity() {
    for (const LintActivity& act : activities_) {
      if (!act.op_known()) continue;  // already WF002
      std::size_t inputs = 0, outputs = 0;
      for (const LintRelation& rel : act.relations) {
        (rel.is_input ? inputs : outputs)++;
      }
      const std::string op = act.op.empty() ? "MAP" : act.op;
      if (inputs != 1) {
        error("WF003", act.line,
              "activity '" + act.tag + "' (" + op + "): expected exactly 1 "
                  "input relation, got " + std::to_string(inputs));
      }
      if (act.is_split_map()) {
        if (outputs < 1) {
          error("WF003", act.line,
                "activity '" + act.tag + "' (SPLIT_MAP): expected at least "
                    "1 output relation, got 0");
        }
      } else if (outputs != 1) {
        error("WF003", act.line,
              "activity '" + act.tag + "' (" + op + "): expected exactly 1 "
                  "output relation, got " + std::to_string(outputs));
      }
    }
  }

  /// WF004 (second producer) + WF007 (consumed but never produced nor
  /// staged from a file).
  void check_producers() {
    for (const LintActivity& act : activities_) {
      for (const LintRelation& rel : act.relations) {
        if (rel.is_input) continue;
        auto [it, inserted] = producers_.emplace(rel.name, &act);
        if (!inserted) {
          error("WF004", rel.line,
                "relation '" + rel.name + "' produced by both '" +
                    it->second->tag + "' and '" + act.tag + "'");
        }
      }
    }
    for (const LintActivity& act : activities_) {
      for (const LintRelation& rel : act.relations) {
        if (!rel.is_input) continue;
        if (producers_.count(rel.name) == 0 && rel.filename.empty()) {
          error("WF007", rel.line,
                "activity '" + act.tag + "': input relation '" + rel.name +
                    "' has no producing activity and no filename to stage "
                    "it from");
        }
      }
    }
  }

  /// WF005: a consumer's declared input schema must be covered by its
  /// producer's declared output schema. Only checked when both sides
  /// declare `fields` (the attribute is optional).
  void check_schemas() {
    for (const LintActivity& act : activities_) {
      for (const LintRelation& rel : act.relations) {
        if (!rel.is_input || rel.fields.empty()) continue;
        const auto producer = producers_.find(rel.name);
        if (producer == producers_.end()) continue;
        const LintRelation* out = nullptr;
        for (const LintRelation& prel : producer->second->relations) {
          if (!prel.is_input && prel.name == rel.name) out = &prel;
        }
        if (out == nullptr || out->fields.empty()) continue;
        for (const std::string& field : rel.fields) {
          if (std::find(out->fields.begin(), out->fields.end(), field) ==
              out->fields.end()) {
            error("WF005", rel.line,
                  "activity '" + act.tag + "': input relation '" + rel.name +
                      "' expects field '" + field + "' but producer '" +
                      producer->second->tag + "' declares only (" +
                      join(out->fields, ", ") + ")");
          }
        }
      }
    }
  }

  /// WF008 (malformed %TAG% syntax) + WF009 (tag resolves to no declared
  /// input field; only checked when the input declares a schema) + WF010
  /// (input schema undeclared, but the tag names no field declared by
  /// *any* relation of the workflow — in a workflow that declares fields
  /// elsewhere, such a tag can never be bound). WF010 stays silent in
  /// fully schema-less specifications, where nothing can be validated.
  void check_templates() {
    std::set<std::string> declared_anywhere;
    for (const LintActivity& act : activities_) {
      for (const LintRelation& rel : act.relations) {
        declared_anywhere.insert(rel.fields.begin(), rel.fields.end());
      }
    }
    for (const LintActivity& act : activities_) {
      if (act.activation.empty()) continue;
      std::vector<std::string> tags;
      try {
        tags = wf::template_tags(act.activation);
      } catch (const ParseError& e) {
        error("WF008", act.line,
              "activity '" + act.tag + "': " + e.what());
        continue;
      }
      const LintRelation* input = nullptr;
      for (const LintRelation& rel : act.relations) {
        if (rel.is_input) {
          input = &rel;
          break;
        }
      }
      if (input == nullptr || input->fields.empty()) {
        if (declared_anywhere.empty()) continue;
        for (const std::string& tag : tags) {
          if (declared_anywhere.count(tag) == 0) {
            error("WF010", act.line,
                  "activity '" + act.tag + "': template tag %" + tag +
                      "% is referenced but no relation in the workflow "
                      "declares a field of that name");
          }
        }
        continue;
      }
      for (const std::string& tag : tags) {
        if (std::find(input->fields.begin(), input->fields.end(), tag) ==
            input->fields.end()) {
          error("WF009", act.line,
                "activity '" + act.tag + "': template tag %" + tag +
                    "% names no field of input relation '" + input->name +
                    "' (" + join(input->fields, ", ") + ")");
        }
      }
    }
  }

  /// WF006: the relation wiring must form a DAG. Iteratively peel
  /// activities whose inputs are all satisfied; whatever cannot be peeled
  /// sits on (or behind) a cycle.
  void check_cycles() {
    std::set<std::string> available;  // relations with no producer = sources
    for (const LintActivity& act : activities_) {
      for (const LintRelation& rel : act.relations) {
        if (rel.is_input && producers_.count(rel.name) == 0) {
          available.insert(rel.name);
        }
      }
    }
    std::vector<const LintActivity*> remaining;
    for (const LintActivity& act : activities_) remaining.push_back(&act);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = remaining.begin(); it != remaining.end();) {
        const bool ready = std::all_of(
            (*it)->relations.begin(), (*it)->relations.end(),
            [&](const LintRelation& rel) {
              return !rel.is_input || available.count(rel.name) > 0;
            });
        if (ready) {
          for (const LintRelation& rel : (*it)->relations) {
            if (!rel.is_input) available.insert(rel.name);
          }
          it = remaining.erase(it);
          progressed = true;
        } else {
          ++it;
        }
      }
    }
    for (const LintActivity* act : remaining) {
      error("WF006", act->line,
            "activity '" + act->tag + "' is part of (or downstream of) a "
                "dataflow cycle");
    }
  }

  std::string file_;
  Report& report_;
  std::vector<LintActivity> activities_;
  std::map<std::string, const LintActivity*> producers_;
};

}  // namespace

Report lint_workflow_xml(std::string_view xml_text, std::string file) {
  Report report;
  xml::Document doc;
  try {
    doc = xml::parse(xml_text);
  } catch (const ParseError& e) {
    report.add_error("WF001", std::move(file), 0, e.what());
    return report;
  }
  if (!doc.root) {
    report.add_error("WF001", std::move(file), 0, "empty XML document");
    return report;
  }
  WorkflowLinter(std::move(file), report).run(*doc.root);
  return report;
}

Report lint_workflow(const wf::WorkflowDef& def, std::string file) {
  return lint_workflow_xml(wf::save_spec(def), std::move(file));
}

}  // namespace scidock::lint
