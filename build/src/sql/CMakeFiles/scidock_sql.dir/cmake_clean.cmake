file(REMOVE_RECURSE
  "CMakeFiles/scidock_sql.dir/ast.cpp.o"
  "CMakeFiles/scidock_sql.dir/ast.cpp.o.d"
  "CMakeFiles/scidock_sql.dir/engine.cpp.o"
  "CMakeFiles/scidock_sql.dir/engine.cpp.o.d"
  "CMakeFiles/scidock_sql.dir/lexer.cpp.o"
  "CMakeFiles/scidock_sql.dir/lexer.cpp.o.d"
  "CMakeFiles/scidock_sql.dir/parser.cpp.o"
  "CMakeFiles/scidock_sql.dir/parser.cpp.o.d"
  "CMakeFiles/scidock_sql.dir/table.cpp.o"
  "CMakeFiles/scidock_sql.dir/table.cpp.o.d"
  "CMakeFiles/scidock_sql.dir/value.cpp.o"
  "CMakeFiles/scidock_sql.dir/value.cpp.o.d"
  "libscidock_sql.a"
  "libscidock_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
