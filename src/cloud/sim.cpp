#include "cloud/sim.hpp"

#include "util/error.hpp"

namespace scidock::cloud {

void Simulation::schedule_at(double at, EventFn fn) {
  SCIDOCK_REQUIRE(at >= now_, "cannot schedule an event in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

double Simulation::run() {
  while (!queue_.empty()) {
    // The event function may schedule more events; copy out first.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.fn();
  }
  return now_;
}

double Simulation::run_until(double deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace scidock::cloud
