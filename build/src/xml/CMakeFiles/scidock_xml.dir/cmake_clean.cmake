file(REMOVE_RECURSE
  "CMakeFiles/scidock_xml.dir/xml.cpp.o"
  "CMakeFiles/scidock_xml.dir/xml.cpp.o.d"
  "libscidock_xml.a"
  "libscidock_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
