#pragma once

/// \file scidock.hpp
/// The SciDock workflow itself: the paper's eight activities implemented
/// over the mol/dock libraries and bound into a wf::Pipeline, plus the
/// Figure 2 XML definition.
///
/// Activity map (paper Figure 1):
///   1 babel         — SDF -> MOL2 conversion
///   2 prepligand    — MOL2 -> ligand PDBQT (charges, types, torsion tree)
///   3 prepreceptor  — PDB -> rigid receptor PDBQT (hangs on Hg upstream)
///   4 gpfprep       — grid parameter file from the PDBQT pair
///   5 autogrid      — coordinate/affinity maps
///   6 dockfilter    — size-based routing: AD4 (small) vs Vina (large)
///   7a dpfprep      — AD4 docking parameter file
///   7b confprep     — Vina configuration file
///   8a autodock4    — LGA docking over the maps, .dlg output
///   8b autodockvina — MC docking, Vina log output

#include <memory>
#include <string>

#include "data/generator.hpp"
#include "dock/dpf.hpp"
#include "wf/pipeline.hpp"
#include "wf/workflow.hpp"

namespace scidock::core {

/// Which docking program handles each pair (paper §V.B scenarios).
enum class EngineMode {
  Adaptive,   ///< activity 6 routes by receptor size (SciDock's design)
  ForceAd4,   ///< Scenario I: the whole set through AutoDock 4
  ForceVina,  ///< Scenario II: the whole set through Vina
};

struct ScidockOptions {
  data::GeneratorOptions dataset{};
  EngineMode engine_mode = EngineMode::Adaptive;

  /// Search effort — defaults are deliberately small so native runs of
  /// hundreds of pairs finish in seconds; raise for higher-quality poses.
  dock::DockingParameterFile ad4_params{
      .ga_runs = 2, .ga_pop_size = 24, .ga_num_evals = 3000,
      .ga_num_generations = 60, .sw_max_its = 50};
  int vina_exhaustiveness = 3;
  int vina_steps_per_chain = 40;

  double grid_spacing = 0.55;   ///< Å; AutoGrid's default 0.375 is slower
  bool write_map_files = false; ///< also serialise .map files to the VFS
  std::string expdir = "/root/exp_SciDock";
};

/// Shared in-process cache of expensive intermediates (prepared
/// structures and grid maps), keyed by file path. Plays the role of a
/// VM-local scratch cache over the shared filesystem.
class ArtifactCache;

/// Build the runnable pipeline: all stages with native implementations,
/// routing, per-tuple workload scaling and the Hg hazard predicate. The
/// returned pipeline references `cache` and `opts` by value internally.
wf::Pipeline build_scidock_pipeline(const ScidockOptions& opts,
                                    std::shared_ptr<ArtifactCache> cache = nullptr);

std::shared_ptr<ArtifactCache> make_artifact_cache();

/// The static workflow definition matching the Figure 2 XML specification
/// (round-trips through wf::save_spec / wf::load_spec).
wf::WorkflowDef scidock_workflow_def(const ScidockOptions& opts = {});

/// Stage tags, exposed for benches/tests.
inline constexpr const char* kBabel = "babel";
inline constexpr const char* kPrepLigand = "prepligand";
inline constexpr const char* kPrepReceptor = "prepreceptor";
inline constexpr const char* kGpfPrep = "gpfprep";
inline constexpr const char* kAutogrid = "autogrid";
inline constexpr const char* kDockFilter = "dockfilter";
inline constexpr const char* kDpfPrep = "dpfprep";
inline constexpr const char* kConfPrep = "confprep";
inline constexpr const char* kAutodock4 = "autodock4";
inline constexpr const char* kAutodockVina = "autodockvina";

}  // namespace scidock::core
