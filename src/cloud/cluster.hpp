#pragma once

/// \file cluster.hpp
/// The virtual cluster: acquisition and release of VM instances against
/// the simulated EC2 region, with boot latency, per-instance performance
/// jitter and cost accounting — the substrate SciCumulus' elasticity
/// adapts at runtime.

#include <vector>

#include "cloud/sim.hpp"
#include "cloud/vm.hpp"
#include "util/rng.hpp"

namespace scidock::cloud {

struct ClusterOptions {
  double boot_latency_mean_s = 75.0;   ///< EC2 instance start-up time
  double boot_latency_jitter_s = 20.0;
  double performance_jitter_sigma = 0.08;  ///< lognormal sigma around 1.0
};

class VirtualCluster {
 public:
  VirtualCluster(Simulation& sim, Rng rng, ClusterOptions opts = {});

  /// Request a new instance; it becomes usable after the boot latency.
  /// Returns the instance id immediately (the paper's asynchronous VM
  /// acquisition).
  long long acquire(const VmType& type);

  /// Terminate an instance (bills a final partial hour).
  void release(long long vm_id);

  const VmInstance& instance(long long vm_id) const;
  /// All instances ever acquired (dead ones have released_at >= 0).
  const std::vector<VmInstance>& instances() const { return instances_; }
  /// Currently alive instances.
  std::vector<const VmInstance*> alive() const;
  int alive_count() const;
  /// Sum of cores over alive instances (the paper's "virtual cores").
  int total_cores() const;

  /// Accumulated cost: each instance bills per started hour from boot
  /// request to release (or `now` if still alive) — EC2's 2014 billing.
  double accumulated_cost_usd() const;

 private:
  VmInstance& instance_mut(long long vm_id);

  Simulation& sim_;
  Rng rng_;
  ClusterOptions opts_;
  std::vector<VmInstance> instances_;
  std::vector<double> acquired_at_;  ///< parallel to instances_
  long long next_id_ = 1;
};

}  // namespace scidock::cloud
