#include "mol/torsion.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace scidock::mol {

namespace {

/// Collect the atom set reachable from `start` without crossing the bond
/// (block_a, block_b) in either direction.
std::vector<int> reachable_without_bond(const Molecule& m, int start,
                                        int block_a, int block_b) {
  std::vector<bool> seen(static_cast<std::size_t>(m.atom_count()), false);
  std::deque<int> queue{start};
  seen[static_cast<std::size_t>(start)] = true;
  std::vector<int> out;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (int v : m.neighbors(u)) {
      if ((u == block_a && v == block_b) || (u == block_b && v == block_a)) {
        continue;
      }
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return out;
}

int heavy_count(const Molecule& m, const std::vector<int>& atoms) {
  int n = 0;
  for (int i : atoms) {
    if (m.atom(i).element != Element::H) ++n;
  }
  return n;
}

bool is_amide_like(const Molecule& m, int a, int b) {
  // C-N bond where the carbon also binds a double-bonded oxygen: the
  // classic non-rotatable amide. Bond orders from SDF/MOL2 make this exact;
  // geometry-inferred bonds (all Single) simply skip the check.
  auto check = [&m](int carbon, int nitrogen) {
    if (m.atom(carbon).element != Element::C ||
        m.atom(nitrogen).element != Element::N) {
      return false;
    }
    for (const Bond& bd : m.bonds()) {
      if (bd.order != BondOrder::Double) continue;
      const int other = bd.a == carbon ? bd.b : (bd.b == carbon ? bd.a : -1);
      if (other >= 0 && m.atom(other).element == Element::O) return true;
    }
    return false;
  };
  return check(a, b) || check(b, a);
}

}  // namespace

TorsionTree TorsionTree::build(const Molecule& m, int min_fragment) {
  SCIDOCK_ASSERT_MSG(m.perceived(), "perceive() the molecule before building a torsion tree");
  TorsionTree tree;

  // 1. Find rotatable bonds.
  struct RotBond {
    int a, b;
  };
  std::vector<RotBond> rotatable;
  for (const Bond& b : m.bonds()) {
    if (b.order != BondOrder::Single) continue;
    if (m.atom(b.a).element == Element::H || m.atom(b.b).element == Element::H) continue;
    if (is_amide_like(m, b.a, b.b)) continue;
    const std::vector<int> side_a = reachable_without_bond(m, b.a, b.a, b.b);
    // Ring bonds are rigid: removing a bond that belongs to a cycle does
    // not split the molecule, so the far endpoint stays reachable.
    if (std::find(side_a.begin(), side_a.end(), b.b) != side_a.end()) continue;
    const std::vector<int> side_b = reachable_without_bond(m, b.b, b.a, b.b);
    if (heavy_count(m, side_a) < min_fragment || heavy_count(m, side_b) < min_fragment) {
      continue;
    }
    rotatable.push_back({b.a, b.b});
  }

  // 2. Rigid fragments = connected components after deleting rotatable bonds.
  const int n = m.atom_count();
  std::vector<int> fragment(static_cast<std::size_t>(n), -1);
  auto is_rotatable = [&rotatable](int u, int v) {
    for (const RotBond& rb : rotatable) {
      if ((rb.a == u && rb.b == v) || (rb.a == v && rb.b == u)) return true;
    }
    return false;
  };
  int fragment_count = 0;
  for (int start = 0; start < n; ++start) {
    if (fragment[static_cast<std::size_t>(start)] != -1) continue;
    const int id = fragment_count++;
    std::deque<int> queue{start};
    fragment[static_cast<std::size_t>(start)] = id;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : m.neighbors(u)) {
        if (fragment[static_cast<std::size_t>(v)] != -1) continue;
        if (is_rotatable(u, v)) continue;
        fragment[static_cast<std::size_t>(v)] = id;
        queue.push_back(v);
      }
    }
  }

  // 3. Root = largest fragment (MGLTools default heuristic).
  std::vector<int> frag_size(static_cast<std::size_t>(fragment_count), 0);
  for (int i = 0; i < n; ++i) ++frag_size[static_cast<std::size_t>(fragment[static_cast<std::size_t>(i)])];
  const int root_frag = static_cast<int>(std::distance(
      frag_size.begin(), std::max_element(frag_size.begin(), frag_size.end())));
  for (int i = 0; i < n; ++i) {
    if (fragment[static_cast<std::size_t>(i)] == root_frag) tree.root_atoms_.push_back(i);
  }

  // 4. BFS from the root across rotatable bonds defines branch order
  //    (preorder: parents before children).
  std::vector<bool> frag_done(static_cast<std::size_t>(fragment_count), false);
  frag_done[static_cast<std::size_t>(root_frag)] = true;
  std::deque<std::pair<int, int>> frontier;  // (fragment id, parent branch)
  frontier.emplace_back(root_frag, -1);
  while (!frontier.empty()) {
    const auto [frag_id, parent_branch] = frontier.front();
    frontier.pop_front();
    for (const RotBond& rb : rotatable) {
      const int fa = fragment[static_cast<std::size_t>(rb.a)];
      const int fb = fragment[static_cast<std::size_t>(rb.b)];
      int from = -1, to = -1;
      if (fa == frag_id && !frag_done[static_cast<std::size_t>(fb)]) {
        from = rb.a;
        to = rb.b;
      } else if (fb == frag_id && !frag_done[static_cast<std::size_t>(fa)]) {
        from = rb.b;
        to = rb.a;
      } else {
        continue;
      }
      TorsionBranch branch;
      branch.atom_from = from;
      branch.atom_to = to;
      branch.parent = parent_branch;
      branch.moving_atoms = reachable_without_bond(m, to, from, to);
      // The pivot atom itself lies on the axis; rotating it is a no-op but
      // excluding it keeps the moving set semantically "what changes".
      std::erase(branch.moving_atoms, to);
      tree.branches_.push_back(std::move(branch));
      const int this_branch = static_cast<int>(tree.branches_.size()) - 1;
      const int next_frag = fragment[static_cast<std::size_t>(to)];
      frag_done[static_cast<std::size_t>(next_frag)] = true;
      frontier.emplace_back(next_frag, this_branch);
    }
  }
  return tree;
}

TorsionTree TorsionTree::from_branches(std::vector<TorsionBranch> branches,
                                       std::vector<int> root_atoms) {
  TorsionTree tree;
  tree.branches_ = std::move(branches);
  tree.root_atoms_ = std::move(root_atoms);
  return tree;
}

std::vector<Vec3> TorsionTree::apply(const std::vector<Vec3>& reference,
                                     const Pose& pose,
                                     const std::vector<double>& torsion_angles) const {
  SCIDOCK_ASSERT(static_cast<int>(torsion_angles.size()) == torsion_count());
  std::vector<Vec3> coords = reference;

  // Torsions first (about axes in the reference frame, parents before
  // children so child axes are taken from already-rotated coordinates) ...
  for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
    const TorsionBranch& br = branches_[bi];
    const Vec3 origin = coords[static_cast<std::size_t>(br.atom_from)];
    const Vec3 axis = coords[static_cast<std::size_t>(br.atom_to)] - origin;
    const Quaternion q = Quaternion::from_axis_angle(axis, torsion_angles[bi]);
    for (int atom : br.moving_atoms) {
      auto& p = coords[static_cast<std::size_t>(atom)];
      p = q.rotate(p - origin) + origin;
    }
  }

  // ... then the rigid-body pose about the root-fragment centroid. A rigid
  // transform preserves the internal geometry the torsions just set.
  std::vector<Vec3> root_ref;
  root_ref.reserve(root_atoms_.size());
  for (int i : root_atoms_) root_ref.push_back(reference[static_cast<std::size_t>(i)]);
  const Vec3 root_center = root_ref.empty() ? Vec3{} : centroid(root_ref);
  for (Vec3& p : coords) {
    p = pose.rotation.rotate(p - root_center) + root_center + pose.translation;
  }
  return coords;
}

}  // namespace scidock::mol
