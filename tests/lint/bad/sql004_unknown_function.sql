SELECT date_trunc('day', starttime) FROM hworkflow
