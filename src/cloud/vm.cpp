#include "cloud/vm.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::cloud {

namespace {
// Prices are the 2014 us-east-1 on-demand rates the paper alludes to
// ("m3 VMs in Amazon are expensive types").
const std::vector<VmType> kCatalogue{
    {"m3.xlarge", 4, "Intel Xeon E5-2670", 1.0, 0.450},
    {"m3.2xlarge", 8, "Intel Xeon E5-2670", 1.0, 0.900},
    {"t1.micro", 1, "variable", 0.35, 0.020},
};
}  // namespace

const VmType& vm_type_m3_xlarge() { return kCatalogue[0]; }
const VmType& vm_type_m3_2xlarge() { return kCatalogue[1]; }
const VmType& vm_type_t1_micro() { return kCatalogue[2]; }

const std::vector<VmType>& vm_catalogue() { return kCatalogue; }

const VmType& vm_type_by_name(std::string_view name) {
  for (const VmType& t : kCatalogue) {
    if (iequals(t.name, name)) return t;
  }
  throw NotFoundError("VM type", name);
}

}  // namespace scidock::cloud
